//! Length-prefixed framing over a byte stream.
//!
//! Every frame is a fixed 7-byte header followed by the payload:
//!
//! ```text
//! +----+----+---------+-------------------+===========+
//! | 'S'| 'A'| version |  length (u32 LE)  |  payload  |
//! +----+----+---------+-------------------+===========+
//! ```
//!
//! The header is validated *prefix-first*: a bad magic or unsupported
//! version is rejected after 2–3 bytes, and the length is bounded by
//! [`MAX_FRAME`] before a single payload byte is read or allocated — a
//! hostile peer sending `0xFFFF_FFFF` gets a typed error, not a 4 GiB
//! allocation. Payloads decode with the strict [`sa_types::wire`] reader,
//! so trailing garbage inside a frame is also an error.
//!
//! Two consumption styles are provided:
//!
//! * [`read_message`] / [`write_message`] — blocking helpers for
//!   `std::net::TcpStream` (or any `Read`/`Write`). A clean EOF *between*
//!   frames returns `Ok(None)`; an EOF *inside* a frame is a peer failure
//!   and returns [`SaError::Disconnected`].
//! * [`FrameBuffer`] — a sans-io incremental decoder: feed it bytes as
//!   they arrive, pull complete frames out. Useful for tests and for any
//!   future non-blocking transport.

use crate::message::Message;
use sa_types::{SaError, WireDecode, WireEncode};
use std::io::{ErrorKind, Read, Write};

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"SA";

/// The protocol version this build speaks.
///
/// Version 2: `HelloAssign` carries the heartbeat cadence, window results
/// carry degraded-merge accounting, and the rejoin/handoff messages
/// (`HelloRejoin`, `Reassign`, `SnapshotSlice`) exist.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on a frame's payload length, checked before allocation.
///
/// 16 MiB comfortably fits any digest a sanely-sized reservoir produces
/// (a million sampled `f64`s is 8 MiB) while keeping a hostile length
/// prefix harmless.
pub const MAX_FRAME: usize = 16 << 20;

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 7;

/// Validates the fixed header fields available in `buf` so far.
///
/// Returns the payload length once all [`HEADER_LEN`] bytes are present,
/// `Ok(None)` while the prefix is valid but incomplete.
fn check_header(buf: &[u8]) -> Result<Option<usize>, SaError> {
    for (i, expect) in MAGIC.iter().enumerate() {
        match buf.get(i) {
            None => return Ok(None),
            Some(b) if b != expect => {
                return Err(SaError::Wire(format!(
                    "bad frame magic 0x{:02x}{:02x}",
                    buf[0],
                    buf.get(1).copied().unwrap_or(0)
                )));
            }
            Some(_) => {}
        }
    }
    match buf.get(2) {
        None => return Ok(None),
        Some(&v) if v != WIRE_VERSION => {
            return Err(SaError::Wire(format!(
                "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
            )));
        }
        Some(_) => {}
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]) as usize;
    if len > MAX_FRAME {
        return Err(SaError::Wire(format!(
            "frame length {len} exceeds maximum {MAX_FRAME}"
        )));
    }
    Ok(Some(len))
}

/// Frames a payload: header plus bytes, ready to write.
fn frame_bytes(payload: &[u8]) -> Result<Vec<u8>, SaError> {
    if payload.len() > MAX_FRAME {
        return Err(SaError::Wire(format!(
            "refusing to send {}-byte frame over maximum {MAX_FRAME}",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Encodes and writes one message as a single frame.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), SaError> {
    let framed = frame_bytes(&msg.to_wire_bytes())?;
    w.write_all(&framed)
        .and_then(|()| w.flush())
        .map_err(|e| SaError::Wire(format!("send failed: {e}")))
}

/// Reads one framed message, blocking until a full frame arrives.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary. An
/// end-of-stream in the middle of a frame — the peer died or was cut off —
/// is [`SaError::Disconnected`].
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, SaError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(SaError::Disconnected("peer closed mid-frame")),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(SaError::Wire(format!("receive failed: {e}"))),
        }
        // Reject bad magic/version as soon as the prefix shows it, instead
        // of stalling for a length that may never come.
        check_header(&header[..got])?;
    }
    let len = check_header(&header)?.expect("full header was read");
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        ErrorKind::UnexpectedEof => SaError::Disconnected("peer closed mid-frame"),
        _ => SaError::Wire(format!("receive failed: {e}")),
    })?;
    Message::from_wire_bytes(&payload).map(Some)
}

/// A sans-io incremental frame decoder.
///
/// Feed raw bytes with [`FrameBuffer::extend`]; pull decoded messages with
/// [`FrameBuffer::next_message`]. Errors are sticky in the sense that a
/// corrupt header keeps erroring — framing has no resynchronization point,
/// so callers should drop the connection.
///
/// # Example
///
/// ```
/// use sa_net::{frame, FrameBuffer, Message};
///
/// let mut wire = Vec::new();
/// frame::write_message(&mut wire, &Message::Shutdown { worker: 0 }).unwrap();
/// let mut fb = FrameBuffer::new();
/// for byte in wire {
///     fb.extend(&[byte]); // arbitrarily fragmented arrival
/// }
/// assert_eq!(fb.next_message().unwrap(), Some(Message::Shutdown { worker: 0 }));
/// assert_eq!(fb.next_message().unwrap(), None);
/// ```
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends bytes received from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete message, if one is fully buffered.
    pub fn next_message(&mut self) -> Result<Option<Message>, SaError> {
        let Some(len) = check_header(&self.buf)? else {
            return Ok(None);
        };
        let total = HEADER_LEN + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let msg = Message::from_wire_bytes(&self.buf[HEADER_LEN..total])?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shutdown_frame() -> Vec<u8> {
        let mut wire = Vec::new();
        write_message(&mut wire, &Message::Shutdown { worker: 3 }).unwrap();
        wire
    }

    #[test]
    fn roundtrip_two_messages_then_clean_eof() {
        let mut wire = Vec::new();
        let a = Message::HelloJoin {
            worker: 0,
            wants_results: false,
        };
        let b = Message::Shutdown { worker: 0 };
        write_message(&mut wire, &a).unwrap();
        write_message(&mut wire, &b).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_message(&mut r).unwrap(), Some(a));
        assert_eq!(read_message(&mut r).unwrap(), Some(b));
        assert_eq!(read_message(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_disconnected_not_a_hang() {
        let wire = shutdown_frame();
        // Cut inside the header and inside the payload.
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            match read_message(&mut r) {
                Err(SaError::Disconnected(_)) | Err(SaError::Wire(_)) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_rejected_immediately() {
        let mut wire = shutdown_frame();
        wire[0] = b'X';
        let mut r = wire.as_slice();
        assert!(matches!(read_message(&mut r), Err(SaError::Wire(_))));
        // Sans-io path agrees, even with just one buffered byte.
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..1]);
        assert!(fb.next_message().is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = shutdown_frame();
        wire[2] = 99;
        let mut r = wire.as_slice();
        match read_message(&mut r) {
            Err(SaError::Wire(why)) => assert!(why.contains("version 99"), "{why}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let mut wire = Vec::from(MAGIC);
        wire.push(WIRE_VERSION);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = wire.as_slice();
        match read_message(&mut r) {
            Err(SaError::Wire(why)) => assert!(why.contains("exceeds maximum"), "{why}"),
            other => panic!("unexpected {other:?}"),
        }
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert!(fb.next_message().is_err());
    }

    #[test]
    fn oversized_send_refused() {
        // A payload over MAX_FRAME must be refused on the sending side too;
        // frame_bytes is the chokepoint.
        assert!(frame_bytes(&[0u8; MAX_FRAME]).is_ok());
        assert!(frame_bytes(vec![0u8; MAX_FRAME + 1].as_slice()).is_err());
    }

    #[test]
    fn frame_with_trailing_payload_garbage_rejected() {
        let msg = Message::Shutdown { worker: 1 };
        let mut payload = msg.to_wire_bytes();
        payload.push(0xEE);
        let wire = frame_bytes(&payload).unwrap();
        let mut r = wire.as_slice();
        assert!(matches!(read_message(&mut r), Err(SaError::Wire(_))));
    }

    #[test]
    fn frame_buffer_reassembles_fragmented_input() {
        let mut wire = Vec::new();
        let msgs = [
            Message::HelloJoin {
                worker: 1,
                wants_results: true,
            },
            Message::Heartbeat {
                worker: 1,
                ingest: Default::default(),
                watermark: None,
                lag: 5,
                last_checkpoint_pane: None,
                items_since_checkpoint: 0,
                snapshot_bytes: 0,
            },
            Message::Shutdown { worker: 1 },
        ];
        for m in &msgs {
            write_message(&mut wire, m).unwrap();
        }
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        for chunk in wire.chunks(3) {
            fb.extend(chunk);
            while let Some(m) = fb.next_message().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded.as_slice(), msgs.as_slice());
        assert_eq!(fb.pending(), 0);
    }
}
