//! An in-memory stream aggregator — the Kafka analogue of the StreamApprox
//! reproduction (the paper uses Apache Kafka to "combine the incoming data
//! items from disjoint sub-streams" into the system's single input stream,
//! §2.1).
//!
//! The moving parts mirror Kafka's model at the granularity the paper needs:
//!
//! * [`Topic`] — a named set of append-only partitions storing
//!   [`Message`]s (item batches).
//! * [`Producer`] — publishes batches, spreading them round-robin or by
//!   stratum hash ([`Partitioner`]).
//! * [`Consumer`] — reads owned partitions at its own pace with offset
//!   tracking; consumers in a group split partitions Kafka-style.
//! * [`merge_by_time`] / [`replay_into`] — the replay tool of §6.1: merge
//!   recorded sub-streams into one time-ordered stream and publish it in
//!   200-item messages.
//!
//! Durability, brokers-as-processes and the network are out of scope: the
//! evaluation only exercises the aggregator as an in-memory hand-off
//! between the replay tool and the stream engines.
//!
//! # Example
//!
//! ```
//! use sa_aggregator::{Topic, Producer, Consumer, Partitioner, merge_by_time, replay_into};
//! use sa_types::{StreamItem, StratumId, EventTime};
//!
//! // Two sub-streams, merged and replayed through a 2-partition topic.
//! let tcp: Vec<_> = (0..300)
//!     .map(|i| StreamItem::new(StratumId(0), EventTime::from_millis(i), i as u64))
//!     .collect();
//! let udp: Vec<_> = (0..100)
//!     .map(|i| StreamItem::new(StratumId(1), EventTime::from_millis(i * 3), i as u64))
//!     .collect();
//!
//! let topic = Topic::new("flows", 2);
//! let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
//! replay_into(merge_by_time(vec![tcp, udp]), &mut producer, 200);
//!
//! let mut consumer = Consumer::whole_topic(topic);
//! assert_eq!(consumer.poll_items(usize::MAX).len(), 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod log;
mod replay;

pub use client::{Consumer, Partitioner, Producer};
pub use log::{Message, Topic};
pub use replay::{merge_by_time, replay_into, DEFAULT_MESSAGE_SIZE};
