//! Producer and consumer clients over a [`Topic`].

use crate::log::{Message, Topic};
use sa_types::{StratumId, StreamItem};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// How a producer maps items to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Messages rotate over partitions round-robin — the aggregator's role
    /// in the paper is to *combine* disjoint sub-streams into one stream,
    /// so by default strata are mixed together.
    RoundRobin,
    /// Items are split by stratum hash, keeping each sub-stream on a single
    /// partition (useful when downstream operators want partition-locality
    /// per stratum).
    ByStratum,
}

/// Publishes item batches to a topic.
///
/// # Example
///
/// ```
/// use sa_aggregator::{Producer, Partitioner, Topic};
/// use sa_types::{StreamItem, StratumId, EventTime};
///
/// let topic = Topic::new("in", 2);
/// let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
/// producer.send(vec![StreamItem::new(StratumId(0), EventTime::from_millis(0), 1u32)]);
/// producer.send(vec![StreamItem::new(StratumId(0), EventTime::from_millis(1), 2u32)]);
/// assert_eq!(topic.high_watermark(0) + topic.high_watermark(1), 2);
/// ```
#[derive(Debug)]
pub struct Producer<T> {
    topic: Arc<Topic<T>>,
    partitioner: Partitioner,
    next_round_robin: usize,
}

impl<T> Producer<T> {
    /// Creates a producer for `topic`.
    pub fn new(topic: Arc<Topic<T>>, partitioner: Partitioner) -> Self {
        Producer {
            topic,
            partitioner,
            next_round_robin: 0,
        }
    }

    fn partition_for(&mut self, items: &[StreamItem<T>]) -> usize {
        let n = self.topic.num_partitions();
        match self.partitioner {
            Partitioner::RoundRobin => {
                let p = self.next_round_robin;
                self.next_round_robin = (self.next_round_robin + 1) % n;
                p
            }
            Partitioner::ByStratum => {
                let stratum = items.first().map(|i| i.stratum).unwrap_or(StratumId(0));
                let mut h = DefaultHasher::new();
                stratum.hash(&mut h);
                (h.finish() % n as u64) as usize
            }
        }
    }

    /// Publishes one message (a batch of items), returning `(partition,
    /// offset)`. Empty batches are dropped and reported as `None`.
    pub fn send(&mut self, items: Vec<StreamItem<T>>) -> Option<(usize, u64)> {
        if items.is_empty() {
            return None;
        }
        let p = self.partition_for(&items);
        let offset = self.topic.append(p, items);
        Some((p, offset))
    }
}

/// A consumer reading an assigned set of partitions with its own offsets.
///
/// Consumers in the same group split the topic's partitions among
/// themselves via [`Consumer::group`], Kafka-style: partition `i` goes to
/// group member `i % group_size`.
///
/// # Example
///
/// ```
/// use sa_aggregator::{Consumer, Producer, Partitioner, Topic};
/// use sa_types::{StreamItem, StratumId, EventTime};
///
/// let topic = Topic::new("in", 1);
/// let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
/// producer.send(vec![StreamItem::new(StratumId(0), EventTime::from_millis(0), 7u32)]);
///
/// let mut consumer = Consumer::whole_topic(topic);
/// let items = consumer.poll_items(100);
/// assert_eq!(items.len(), 1);
/// assert_eq!(items[0].value, 7);
/// assert!(consumer.poll_items(100).is_empty());
/// ```
#[derive(Debug)]
pub struct Consumer<T> {
    topic: Arc<Topic<T>>,
    /// `(partition, next_offset)` pairs this consumer owns.
    assignments: Vec<(usize, u64)>,
    next_poll_slot: usize,
}

impl<T> Consumer<T> {
    /// A consumer owning every partition of the topic.
    pub fn whole_topic(topic: Arc<Topic<T>>) -> Self {
        let assignments = (0..topic.num_partitions()).map(|p| (p, 0)).collect();
        Consumer {
            topic,
            assignments,
            next_poll_slot: 0,
        }
    }

    /// Member `member` of a consumer group of size `group_size`: owns the
    /// partitions `p` with `p % group_size == member`.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or `member >= group_size`.
    pub fn group(topic: Arc<Topic<T>>, member: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert!(member < group_size, "member index out of range");
        let assignments = (0..topic.num_partitions())
            .filter(|p| p % group_size == member)
            .map(|p| (p, 0))
            .collect();
        Consumer {
            topic,
            assignments,
            next_poll_slot: 0,
        }
    }

    /// The partitions this consumer owns.
    pub fn partitions(&self) -> Vec<usize> {
        self.assignments.iter().map(|&(p, _)| p).collect()
    }

    /// The consumer's current `(partition, next_offset)` pairs — the
    /// replay positions a checkpoint records so a restored consumer can
    /// [`seek`](Consumer::seek) back to exactly where this one left off.
    pub fn offsets(&self) -> Vec<(usize, u64)> {
        self.assignments.clone()
    }

    /// Repositions the consumer at previously recorded
    /// [`offsets`](Consumer::offsets). Partitions not mentioned keep
    /// their current position; mentioned partitions this consumer does
    /// not own are an error (a snapshot from a differently-assigned
    /// consumer must not be silently half-applied).
    ///
    /// # Errors
    ///
    /// Returns [`sa_types::SaError::Checkpoint`] if `offsets` names a
    /// partition outside this consumer's assignment.
    pub fn seek(&mut self, offsets: &[(usize, u64)]) -> Result<(), sa_types::SaError> {
        for &(partition, offset) in offsets {
            let slot = self
                .assignments
                .iter_mut()
                .find(|(p, _)| *p == partition)
                .ok_or_else(|| {
                    sa_types::SaError::Checkpoint(format!(
                        "seek names partition {partition} this consumer does not own"
                    ))
                })?;
            slot.1 = offset;
        }
        Ok(())
    }

    /// Polls up to `max_messages` messages, rotating fairly over the owned
    /// partitions, and advances the offsets.
    pub fn poll(&mut self, max_messages: usize) -> Vec<Arc<Message<T>>> {
        let mut out = Vec::new();
        if self.assignments.is_empty() {
            return out;
        }
        let slots = self.assignments.len();
        let mut exhausted = 0usize;
        while out.len() < max_messages && exhausted < slots {
            let slot = self.next_poll_slot % slots;
            self.next_poll_slot = (self.next_poll_slot + 1) % slots;
            let (partition, ref mut offset) = self.assignments[slot];
            let batch = self
                .topic
                .read_from(partition, *offset, max_messages - out.len());
            if batch.is_empty() {
                exhausted += 1;
            } else {
                exhausted = 0;
                *offset += batch.len() as u64;
                out.extend(batch);
            }
        }
        out
    }

    /// Polls messages and flattens them into items (clones the payload out
    /// of the shared log).
    pub fn poll_items(&mut self, max_messages: usize) -> Vec<StreamItem<T>>
    where
        T: Clone,
    {
        self.poll(max_messages)
            .iter()
            .flat_map(|m| m.items.iter().cloned())
            .collect()
    }

    /// Whether the consumer has read everything currently published.
    pub fn is_caught_up(&self) -> bool {
        self.assignments
            .iter()
            .all(|&(p, o)| o >= self.topic.high_watermark(p))
    }

    /// Messages published to the owned partitions but not yet polled —
    /// the consumer's lag behind its source. Distributed workers report
    /// this on every digest and heartbeat (`DigestEngine::lag_handle` in
    /// the `streamapprox` crate), so a coordinator can see which worker
    /// is falling behind.
    pub fn lag(&self) -> u64 {
        self.assignments
            .iter()
            .map(|&(p, o)| self.topic.high_watermark(p).saturating_sub(o))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::EventTime;

    fn item(stratum: u32, v: u64) -> StreamItem<u64> {
        StreamItem::new(StratumId(stratum), EventTime::from_millis(v as i64), v)
    }

    #[test]
    fn round_robin_spreads_messages() {
        let topic = Topic::new("t", 3);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        for v in 0..6 {
            producer.send(vec![item(0, v)]);
        }
        for p in 0..3 {
            assert_eq!(topic.high_watermark(p), 2, "partition {p}");
        }
    }

    #[test]
    fn by_stratum_keeps_stratum_on_one_partition() {
        let topic = Topic::new("t", 4);
        let mut producer = Producer::new(topic.clone(), Partitioner::ByStratum);
        for v in 0..8 {
            producer.send(vec![item(5, v)]);
        }
        let nonempty: Vec<usize> = (0..4).filter(|&p| topic.high_watermark(p) > 0).collect();
        assert_eq!(nonempty.len(), 1);
        assert_eq!(topic.high_watermark(nonempty[0]), 8);
    }

    #[test]
    fn empty_sends_are_dropped() {
        let topic = Topic::<u64>::new("t", 1);
        let mut producer = Producer::new(topic, Partitioner::RoundRobin);
        assert_eq!(producer.send(vec![]), None);
    }

    #[test]
    fn consumer_reads_everything_once() {
        let topic = Topic::new("t", 3);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        for v in 0..30 {
            producer.send(vec![item(0, v)]);
        }
        let mut consumer = Consumer::whole_topic(topic);
        let mut values: Vec<u64> = consumer
            .poll_items(1_000)
            .into_iter()
            .map(|i| i.value)
            .collect();
        values.sort_unstable();
        assert_eq!(values, (0..30).collect::<Vec<_>>());
        assert!(consumer.is_caught_up());
        assert!(consumer.poll(10).is_empty());
    }

    #[test]
    fn group_members_partition_the_work() {
        let topic = Topic::new("t", 4);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        for v in 0..40 {
            producer.send(vec![item(0, v)]);
        }
        let mut a = Consumer::group(topic.clone(), 0, 2);
        let mut b = Consumer::group(topic.clone(), 1, 2);
        assert_eq!(a.partitions(), vec![0, 2]);
        assert_eq!(b.partitions(), vec![1, 3]);
        let mut all: Vec<u64> = a
            .poll_items(1_000)
            .into_iter()
            .chain(b.poll_items(1_000))
            .map(|i| i.value)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn poll_respects_max_and_resumes() {
        let topic = Topic::new("t", 1);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        for v in 0..10 {
            producer.send(vec![item(0, v)]);
        }
        let mut consumer = Consumer::whole_topic(topic);
        assert_eq!(consumer.poll(4).len(), 4);
        assert_eq!(consumer.poll(4).len(), 4);
        assert_eq!(consumer.poll(4).len(), 2);
        assert!(consumer.poll(4).is_empty());
    }

    #[test]
    fn seek_replays_from_recorded_offsets() {
        let topic = Topic::new("t", 2);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        for v in 0..10 {
            producer.send(vec![item(0, v)]);
        }
        let mut consumer = Consumer::whole_topic(topic.clone());
        assert_eq!(consumer.poll(6).len(), 6);
        let saved = consumer.offsets();
        // A fresh consumer seeked to the saved offsets reads exactly the
        // remaining suffix — the already-counted prefix is never replayed.
        let mut restored = Consumer::whole_topic(topic);
        restored.seek(&saved).unwrap();
        let rest: Vec<u64> = restored
            .poll_items(1_000)
            .into_iter()
            .map(|i| i.value)
            .collect();
        let mut tail: Vec<u64> = consumer
            .poll_items(1_000)
            .into_iter()
            .map(|i| i.value)
            .collect();
        let mut rest_sorted = rest.clone();
        rest_sorted.sort_unstable();
        tail.sort_unstable();
        assert_eq!(rest_sorted, tail);
        assert_eq!(rest.len(), 4);
        // Seeking a partition outside the assignment is a typed error.
        let mut member = Consumer::group(restored.topic.clone(), 0, 2);
        assert!(member.seek(&[(1, 0)]).is_err());
    }

    #[test]
    #[should_panic(expected = "member index out of range")]
    fn bad_group_member_rejected() {
        let topic = Topic::<u64>::new("t", 1);
        let _ = Consumer::group(topic, 3, 2);
    }

    #[test]
    fn lag_counts_unpolled_messages_and_drains_to_zero() {
        let topic = Topic::new("t", 2);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        for v in 0..10 {
            producer.send(vec![item(0, v)]);
        }
        let mut a = Consumer::group(topic.clone(), 0, 2);
        let b = Consumer::group(topic.clone(), 1, 2);
        // Each member owns one partition with 5 messages outstanding.
        assert_eq!(a.lag(), 5);
        assert_eq!(b.lag(), 5);
        assert_eq!(a.poll(3).len(), 3);
        assert_eq!(a.lag(), 2);
        let _ = a.poll(100);
        assert_eq!(a.lag(), 0);
        assert!(a.is_caught_up());
        // New publishes raise the lag again.
        producer.send(vec![item(0, 99)]);
        producer.send(vec![item(0, 100)]);
        assert_eq!(a.lag() + b.lag(), 7);
    }
}
