//! The replay tool: merges per-sub-stream recordings into one time-ordered
//! stream and publishes it in fixed-size messages, mirroring the paper's
//! methodology ("we built a tool to efficiently replay the case-study
//! dataset as the input data stream ... each message contained 200 data
//! items", §6.1).

use crate::client::Producer;
use sa_types::StreamItem;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of items per replayed message in the paper's setup.
pub const DEFAULT_MESSAGE_SIZE: usize = 200;

/// Merges several individually time-ordered sub-streams into one stream
/// ordered by event time (ties broken by sub-stream index, then position).
///
/// # Example
///
/// ```
/// use sa_aggregator::merge_by_time;
/// use sa_types::{StreamItem, StratumId, EventTime};
///
/// let a = vec![
///     StreamItem::new(StratumId(0), EventTime::from_millis(0), 'a'),
///     StreamItem::new(StratumId(0), EventTime::from_millis(10), 'b'),
/// ];
/// let b = vec![StreamItem::new(StratumId(1), EventTime::from_millis(5), 'c')];
/// let merged = merge_by_time(vec![a, b]);
/// let values: Vec<char> = merged.iter().map(|i| i.value).collect();
/// assert_eq!(values, vec!['a', 'c', 'b']);
/// ```
pub fn merge_by_time<T>(substreams: Vec<Vec<StreamItem<T>>>) -> Vec<StreamItem<T>> {
    let total: usize = substreams.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<StreamItem<T>>> =
        substreams.into_iter().map(Vec::into_iter).collect();
    // Heap of (Reverse(time), substream index); pop the earliest head.
    let mut heap: BinaryHeap<(Reverse<sa_types::EventTime>, Reverse<usize>)> = BinaryHeap::new();
    let mut heads: Vec<Option<StreamItem<T>>> = Vec::with_capacity(iters.len());
    for (idx, it) in iters.iter_mut().enumerate() {
        let head = it.next();
        if let Some(h) = &head {
            heap.push((Reverse(h.time), Reverse(idx)));
        }
        heads.push(head);
    }
    let mut out = Vec::with_capacity(total);
    while let Some((_, Reverse(idx))) = heap.pop() {
        let item = heads[idx].take().expect("head present for queued index");
        out.push(item);
        if let Some(next) = iters[idx].next() {
            heap.push((Reverse(next.time), Reverse(idx)));
            heads[idx] = Some(next);
        }
    }
    out
}

/// Replays a merged stream into a topic via `producer`, framing it into
/// messages of `message_size` items. Returns the number of messages sent.
///
/// # Panics
///
/// Panics if `message_size` is zero.
pub fn replay_into<T>(
    stream: Vec<StreamItem<T>>,
    producer: &mut Producer<T>,
    message_size: usize,
) -> u64 {
    assert!(message_size > 0, "message size must be positive");
    let mut sent = 0u64;
    let mut buffer = Vec::with_capacity(message_size);
    for item in stream {
        buffer.push(item);
        if buffer.len() == message_size {
            producer.send(std::mem::replace(
                &mut buffer,
                Vec::with_capacity(message_size),
            ));
            sent += 1;
        }
    }
    if !buffer.is_empty() {
        producer.send(buffer);
        sent += 1;
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Consumer, Partitioner};
    use crate::log::Topic;
    use sa_types::{EventTime, StratumId};

    fn item(stratum: u32, ms: i64) -> StreamItem<i64> {
        StreamItem::new(StratumId(stratum), EventTime::from_millis(ms), ms)
    }

    #[test]
    fn merge_produces_global_time_order() {
        let a: Vec<_> = (0..50).map(|i| item(0, i * 3)).collect();
        let b: Vec<_> = (0..30).map(|i| item(1, i * 5)).collect();
        let c: Vec<_> = (0..10).map(|i| item(2, i * 17)).collect();
        let merged = merge_by_time(vec![a, b, c]);
        assert_eq!(merged.len(), 90);
        for w in merged.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn merge_handles_empty_substreams() {
        let merged = merge_by_time(vec![vec![], vec![item(0, 1)], vec![]]);
        assert_eq!(merged.len(), 1);
        assert!(merge_by_time::<i64>(vec![]).is_empty());
    }

    #[test]
    fn merge_ties_break_by_substream_index() {
        let a = vec![item(0, 5)];
        let b = vec![item(1, 5)];
        let merged = merge_by_time(vec![a, b]);
        assert_eq!(merged[0].stratum, StratumId(0));
        assert_eq!(merged[1].stratum, StratumId(1));
    }

    #[test]
    fn replay_frames_messages_of_exact_size() {
        let topic = Topic::new("in", 1);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        let stream: Vec<_> = (0..450).map(|i| item(0, i)).collect();
        let sent = replay_into(stream, &mut producer, 200);
        assert_eq!(sent, 3); // 200 + 200 + 50
        let mut consumer = Consumer::whole_topic(topic);
        let msgs = consumer.poll(10);
        assert_eq!(msgs[0].items.len(), 200);
        assert_eq!(msgs[1].items.len(), 200);
        assert_eq!(msgs[2].items.len(), 50);
    }

    #[test]
    fn replay_roundtrip_preserves_items_and_order() {
        let topic = Topic::new("in", 1);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        let sub_a: Vec<_> = (0..100).map(|i| item(0, i * 2)).collect();
        let sub_b: Vec<_> = (0..100).map(|i| item(1, i * 2 + 1)).collect();
        replay_into(
            merge_by_time(vec![sub_a, sub_b]),
            &mut producer,
            DEFAULT_MESSAGE_SIZE,
        );
        let mut consumer = Consumer::whole_topic(topic);
        let items = consumer.poll_items(1_000);
        assert_eq!(items.len(), 200);
        for w in items.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    #[should_panic(expected = "message size must be positive")]
    fn zero_message_size_rejected() {
        let topic = Topic::<i64>::new("in", 1);
        let mut producer = Producer::new(topic, Partitioner::RoundRobin);
        let _ = replay_into(vec![], &mut producer, 0);
    }
}
