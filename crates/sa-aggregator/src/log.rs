//! Partitioned, append-only topic logs — the storage core of the stream
//! aggregator.

use parking_lot::RwLock;
use sa_types::StreamItem;
use std::sync::Arc;

/// A batch of stream items published as one unit, mirroring the paper's
/// replay methodology ("each message contained 200 data items", §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Message<T> {
    /// Offset of this message within its partition.
    pub offset: u64,
    /// The payload items.
    pub items: Vec<StreamItem<T>>,
}

/// One partition: an append-only log of messages.
#[derive(Debug)]
pub(crate) struct Partition<T> {
    log: RwLock<Vec<Arc<Message<T>>>>,
}

impl<T> Partition<T> {
    fn new() -> Self {
        Partition {
            log: RwLock::new(Vec::new()),
        }
    }

    fn append(&self, items: Vec<StreamItem<T>>) -> u64 {
        let mut log = self.log.write();
        let offset = log.len() as u64;
        log.push(Arc::new(Message { offset, items }));
        offset
    }

    fn read_from(&self, offset: u64, max: usize) -> Vec<Arc<Message<T>>> {
        let log = self.log.read();
        log.iter()
            .skip(offset as usize)
            .take(max)
            .cloned()
            .collect()
    }

    fn high_watermark(&self) -> u64 {
        self.log.read().len() as u64
    }
}

/// A named, partitioned topic: the unit of publication and subscription.
///
/// # Example
///
/// ```
/// use sa_aggregator::Topic;
/// use sa_types::{StreamItem, StratumId, EventTime};
///
/// let topic = Topic::new("traffic", 4);
/// let item = StreamItem::new(StratumId(0), EventTime::from_millis(1), 10u64);
/// topic.append(0, vec![item]);
/// assert_eq!(topic.high_watermark(0), 1);
/// assert_eq!(topic.num_partitions(), 4);
/// ```
#[derive(Debug)]
pub struct Topic<T> {
    name: String,
    partitions: Vec<Partition<T>>,
}

impl<T> Topic<T> {
    /// Creates a topic with `num_partitions` empty partitions.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions` is zero.
    pub fn new(name: impl Into<String>, num_partitions: usize) -> Arc<Self> {
        assert!(num_partitions > 0, "topic needs at least one partition");
        Arc::new(Topic {
            name: name.into(),
            partitions: (0..num_partitions).map(|_| Partition::new()).collect(),
        })
    }

    /// The topic's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Appends a message to `partition`, returning its offset.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn append(&self, partition: usize, items: Vec<StreamItem<T>>) -> u64 {
        self.partitions[partition].append(items)
    }

    /// Reads up to `max` messages from `partition` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn read_from(&self, partition: usize, offset: u64, max: usize) -> Vec<Arc<Message<T>>> {
        self.partitions[partition].read_from(offset, max)
    }

    /// The next offset that will be assigned in `partition` (i.e. the
    /// number of messages currently stored).
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn high_watermark(&self, partition: usize) -> u64 {
        self.partitions[partition].high_watermark()
    }

    /// Total number of items stored across all partitions.
    pub fn total_items(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| {
                p.log
                    .read()
                    .iter()
                    .map(|m| m.items.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::{EventTime, StratumId};

    fn item(v: u64) -> StreamItem<u64> {
        StreamItem::new(StratumId(0), EventTime::from_millis(v as i64), v)
    }

    #[test]
    fn offsets_are_sequential_per_partition() {
        let topic = Topic::new("t", 2);
        assert_eq!(topic.append(0, vec![item(1)]), 0);
        assert_eq!(topic.append(0, vec![item(2)]), 1);
        assert_eq!(topic.append(1, vec![item(3)]), 0);
        assert_eq!(topic.high_watermark(0), 2);
        assert_eq!(topic.high_watermark(1), 1);
    }

    #[test]
    fn read_from_respects_offset_and_max() {
        let topic = Topic::new("t", 1);
        for v in 0..10 {
            topic.append(0, vec![item(v)]);
        }
        let msgs = topic.read_from(0, 4, 3);
        let offsets: Vec<u64> = msgs.iter().map(|m| m.offset).collect();
        assert_eq!(offsets, vec![4, 5, 6]);
    }

    #[test]
    fn read_past_end_is_empty() {
        let topic = Topic::<u64>::new("t", 1);
        assert!(topic.read_from(0, 5, 10).is_empty());
    }

    #[test]
    fn total_items_counts_across_partitions() {
        let topic = Topic::new("t", 3);
        topic.append(0, vec![item(1), item(2)]);
        topic.append(2, vec![item(3)]);
        assert_eq!(topic.total_items(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = Topic::<u64>::new("t", 0);
    }
}
