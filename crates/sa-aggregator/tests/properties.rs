//! Property-based tests for the aggregator: log/offset semantics, consumer
//! group coverage, and replay framing for arbitrary stream shapes.

use proptest::prelude::*;
use sa_aggregator::{merge_by_time, replay_into, Consumer, Partitioner, Producer, Topic};
use sa_types::{EventTime, StratumId, StreamItem};

fn items(spec: &[(u32, i64)]) -> Vec<StreamItem<u32>> {
    let mut t = 0i64;
    spec.iter()
        .enumerate()
        .map(|(i, &(s, gap))| {
            t += gap;
            StreamItem::new(StratumId(s), EventTime::from_millis(t), i as u32)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge_by_time produces a time-ordered interleaving containing every
    /// input item exactly once, preserving per-substream order.
    #[test]
    fn merge_is_an_order_preserving_interleaving(
        subs in proptest::collection::vec(
            proptest::collection::vec((0u32..4, 0i64..100), 0..100),
            0..5,
        ),
    ) {
        let parts: Vec<Vec<StreamItem<u32>>> = subs.iter().map(|s| items(s)).collect();
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        let tagged: Vec<Vec<StreamItem<(usize, u32)>>> = parts
            .into_iter()
            .enumerate()
            .map(|(k, part)| {
                part.into_iter()
                    .map(|i| StreamItem::new(i.stratum, i.time, (k, i.value)))
                    .collect()
            })
            .collect();
        let merged = merge_by_time(tagged);
        prop_assert_eq!(merged.len(), sizes.iter().sum::<usize>());
        // Global time order.
        for w in merged.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        // Per-substream order preserved.
        for (k, &n) in sizes.iter().enumerate() {
            let vals: Vec<u32> = merged
                .iter()
                .filter(|i| i.value.0 == k)
                .map(|i| i.value.1)
                .collect();
            prop_assert_eq!(vals.len(), n);
            for w in vals.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// Replay frames the stream into ceil(n / size) messages whose items
    /// concatenate back to the input.
    #[test]
    fn replay_framing_roundtrip(
        spec in proptest::collection::vec((0u32..4, 0i64..50), 0..500),
        message_size in 1usize..300,
        partitions in 1usize..6,
    ) {
        let stream = items(&spec);
        let n = stream.len();
        let topic = Topic::new("t", partitions);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        let sent = replay_into(stream.clone(), &mut producer, message_size);
        prop_assert_eq!(sent as usize, n.div_ceil(message_size));
        prop_assert_eq!(topic.total_items(), n as u64);

        let mut consumer = Consumer::whole_topic(topic);
        let mut got = consumer.poll_items(usize::MAX);
        prop_assert_eq!(got.len(), n);
        got.sort_by_key(|i| i.value);
        let mut want = stream;
        want.sort_by_key(|i| i.value);
        prop_assert_eq!(got, want);
    }

    /// Consumer groups of any size cover all partitions exactly once.
    #[test]
    fn groups_partition_without_overlap(
        partitions in 1usize..12,
        group_size in 1usize..6,
    ) {
        let topic = Topic::<u32>::new("t", partitions);
        let mut seen: Vec<usize> = Vec::new();
        for member in 0..group_size {
            let consumer = Consumer::group(topic.clone(), member, group_size);
            seen.extend(consumer.partitions());
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..partitions).collect::<Vec<_>>());
    }

    /// Group members together consume every published item exactly once:
    /// their partition sets are disjoint and exhaustive (even with more
    /// members than partitions, where some own nothing), and their polls
    /// union to the full stream with no duplicates.
    #[test]
    fn group_members_consume_disjointly_and_exhaustively(
        spec in proptest::collection::vec((0u32..4, 0i64..50), 0..300),
        partitions in 1usize..8,
        group_size in 1usize..9,
        message_size in 1usize..64,
    ) {
        let stream = items(&spec);
        let n = stream.len();
        let topic = Topic::new("t", partitions);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        replay_into(stream, &mut producer, message_size);

        let mut consumers: Vec<Consumer<u32>> = (0..group_size)
            .map(|member| Consumer::group(topic.clone(), member, group_size))
            .collect();
        // Disjoint and exhaustive partition assignment.
        let mut owned: Vec<usize> = consumers.iter().flat_map(|c| c.partitions()).collect();
        owned.sort_unstable();
        let expected: Vec<usize> = (0..partitions).collect();
        prop_assert_eq!(owned, expected);
        // Together the members see each item exactly once (values are
        // unique indices, so sorted equality detects both loss and
        // duplication).
        let mut values: Vec<u32> = consumers
            .iter_mut()
            .flat_map(|c| c.poll_items(usize::MAX))
            .map(|i| i.value)
            .collect();
        values.sort_unstable();
        let all: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(values, all);
        for c in &consumers {
            prop_assert!(c.is_caught_up());
        }
    }

    /// `poll_items` and `is_caught_up` agree at every step of an
    /// interleaved produce/consume schedule: the consumer reports caught
    /// up exactly when it has returned every item published so far.
    #[test]
    fn poll_items_and_is_caught_up_agree_after_interleaved_sends(
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0u32..4, 0i64..20), 0..30), 0usize..6),
            1..10,
        ),
        partitions in 1usize..5,
    ) {
        let topic = Topic::new("t", partitions);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        let mut consumer = Consumer::whole_topic(topic);
        let mut produced = 0usize;
        let mut consumed = 0usize;
        for (spec, max_poll) in rounds {
            for chunk in items(&spec).chunks(7) {
                prop_assert!(producer.send(chunk.to_vec()).is_some());
                produced += chunk.len();
            }
            consumed += consumer.poll_items(max_poll).len();
            prop_assert_eq!(consumer.is_caught_up(), consumed == produced);
        }
        consumed += consumer.poll_items(usize::MAX).len();
        prop_assert_eq!(consumed, produced);
        prop_assert!(consumer.is_caught_up());
    }

    /// Poll with any max never yields a message twice and eventually
    /// drains the topic.
    #[test]
    fn polling_is_exactly_once(
        spec in proptest::collection::vec((0u32..4, 0i64..50), 0..300),
        message_size in 1usize..64,
        max_poll in 1usize..16,
    ) {
        let stream = items(&spec);
        let n = stream.len();
        let topic = Topic::new("t", 3);
        let mut producer = Producer::new(topic.clone(), Partitioner::RoundRobin);
        replay_into(stream, &mut producer, message_size);
        let mut consumer = Consumer::whole_topic(topic);
        let mut total = 0usize;
        let mut rounds = 0usize;
        loop {
            let batch = consumer.poll(max_poll);
            if batch.is_empty() {
                break;
            }
            prop_assert!(batch.len() <= max_poll);
            total += batch.iter().map(|m| m.items.len()).sum::<usize>();
            rounds += 1;
            prop_assert!(rounds < 10_000, "poll loop did not terminate");
        }
        prop_assert_eq!(total, n);
        prop_assert!(consumer.is_caught_up());
    }
}
