//! Run-level RNG seeding.

use serde::{Deserialize, Serialize};

/// The seed from which every random decision of one run derives.
///
/// Both engines accept a `RunSeed` in their configs and hand it to the
/// shared approximation runtime, which derives per-worker (and per-pane)
/// seeds from it with [`RunSeed::for_worker`]/[`RunSeed::derive`]. The
/// derivation is a SplitMix64 finalizer, so parallel components draw
/// decorrelated random streams while the whole run — on either engine —
/// is exactly reproducible from the one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunSeed(u64);

impl RunSeed {
    /// The default seed used by engine configs.
    pub const DEFAULT: RunSeed = RunSeed(0x5A5A);

    /// Wraps a raw 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        RunSeed(seed)
    }

    /// The raw seed value (what RNG constructors consume).
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Derives a decorrelated child seed for the given salt (pane index,
    /// baseline id, …). Distinct salts give independent streams; equal
    /// salts reproduce the same stream.
    #[must_use]
    pub fn derive(self, salt: u64) -> RunSeed {
        // SplitMix64 finalizer over the salted seed.
        let mut z = self
            .0
            .wrapping_add(salt.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        RunSeed(z ^ (z >> 31))
    }

    /// The seed for worker `worker` of a parallel stage — the single
    /// mixing rule both engines (and the samplers) use.
    #[must_use]
    pub fn for_worker(self, worker: usize) -> RunSeed {
        self.derive(0x57AF_F000 ^ worker as u64)
    }
}

impl Default for RunSeed {
    fn default() -> Self {
        RunSeed::DEFAULT
    }
}

impl From<u64> for RunSeed {
    fn from(seed: u64) -> Self {
        RunSeed::new(seed)
    }
}

impl std::fmt::Display for RunSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(RunSeed::new(7).derive(3), RunSeed::new(7).derive(3));
        assert_eq!(RunSeed::new(7).for_worker(2), RunSeed::new(7).for_worker(2));
    }

    #[test]
    fn distinct_salts_decorrelate() {
        let base = RunSeed::new(42);
        assert_ne!(base.derive(0), base.derive(1));
        assert_ne!(base.for_worker(0), base.for_worker(1));
        assert_ne!(base.derive(0), base);
    }

    #[test]
    fn workers_of_different_runs_differ() {
        assert_ne!(RunSeed::new(1).for_worker(0), RunSeed::new(2).for_worker(0));
    }

    #[test]
    fn raw_value_round_trips() {
        let s: RunSeed = 0xABCD.into();
        assert_eq!(s.value(), 0xABCD);
        assert_eq!(format!("{s}"), "0xabcd");
    }
}
