//! Shared vocabulary types for the StreamApprox reproduction.
//!
//! This crate defines the domain types every other crate in the workspace
//! speaks: [`StreamItem`]s flowing through engines, [`StratumId`]s naming
//! sub-streams, [`EventTime`] and sliding [`WindowSpec`]s, user-facing
//! [`QueryBudget`]s, and the [`ApproxResult`]/[`ErrorBound`] pair in which
//! every approximate answer is reported.
//!
//! The paper ("StreamApprox: Approximate Computing for Stream Analytics",
//! Middleware 2017) stratifies the input stream by the *source* of data items
//! (§2.3): a stratum is one sub-stream. We model that with [`StratumId`], a
//! cheap copyable identifier attached to every item.
//!
//! # Example
//!
//! ```
//! use sa_types::{StreamItem, StratumId, EventTime, WindowSpec};
//!
//! let item = StreamItem::new(StratumId(0), EventTime::from_secs(7), 42.0);
//! let windows = WindowSpec::sliding_secs(10, 5);
//! // A 10s window sliding by 5s covers instants past the first slide twice.
//! assert_eq!(windows.windows_containing(item.time).count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod checkpoint;
mod error;
mod fault;
mod item;
mod result;
mod sample;
mod seed;
mod session;
mod window;
pub mod wire;

pub use budget::{Confidence, QueryBudget};
pub use checkpoint::{CheckpointPolicy, EngineSnapshot, SessionSnapshot};
pub use error::SaError;
pub use fault::{FaultPolicy, WorkerHealth};
pub use item::{EventTime, StratumId, StreamItem};
pub use result::{ApproxResult, ErrorBound};
pub use sample::{StratifiedSample, StratumSample};
pub use seed::RunSeed;
pub use session::{IngestCounters, SessionStatus, ShardIngest, WorkerStatus};
pub use window::{Window, WindowSpec};
pub use wire::{WireDecode, WireEncode, WireReader};
