//! Fault-tolerance vocabulary for the distributed tier: the policy that
//! governs failure detection and recovery, and the per-worker liveness
//! states the coordinator surfaces.
//!
//! Following AF-Stream ("On the Performance and Convergence of Distributed
//! Stream Processing via Approximate Fault Tolerance"), worker loss is an
//! *accuracy* event, not a correctness event: the coordinator absorbs a
//! dead shard by widening the affected windows' error bounds instead of
//! failing the run. [`FaultPolicy`] holds the knobs of that trade —
//! how quickly a silent worker is declared dead, how long its shard is
//! held open for a replacement, and how many respawns are allowed before
//! the shard degrades permanently.

use crate::error::SaError;
use crate::wire::{WireDecode, WireEncode, WireReader};
use std::fmt;
use std::time::Duration;

/// Failure-detection and recovery knobs for a distributed session.
///
/// The defaults are conservative enough that a healthy loopback run never
/// trips them; tests and latency-sensitive deployments shrink them.
///
/// # Example
///
/// ```
/// use sa_types::FaultPolicy;
/// use std::time::Duration;
///
/// let policy = FaultPolicy::default()
///     .with_heartbeat_interval(Duration::from_millis(100))
///     .with_miss_budget(5)
///     .with_backoff(Duration::from_millis(500));
/// assert_eq!(policy.dead_after(), Duration::from_millis(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Cadence at which each worker's automatic heartbeat thread reports
    /// liveness. `Duration::ZERO` disables both automatic heartbeats and
    /// heartbeat-based failure detection.
    pub heartbeat_interval: Duration,
    /// Consecutive heartbeat intervals a worker may stay silent before the
    /// coordinator declares it dead (clamped to at least 1).
    pub miss_budget: u32,
    /// Upper bound on how long the coordinator lets a pane wait for a
    /// live-but-straggling worker's digest (and on every coordinator-side
    /// handshake read) before merging the pane degraded.
    pub pane_timeout: Duration,
    /// How many times a dead worker's shard may be re-adopted by a
    /// replacement before the coordinator retires it permanently.
    pub max_respawn: u32,
    /// How long a dead worker's shard stays open for a replacement to
    /// rejoin before its panes degrade permanently.
    pub backoff: Duration,
}

impl FaultPolicy {
    /// Sets the automatic heartbeat cadence (`Duration::ZERO` disables
    /// heartbeat-based failure detection).
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Sets how many heartbeat intervals of silence mean death.
    pub fn with_miss_budget(mut self, budget: u32) -> Self {
        self.miss_budget = budget;
        self
    }

    /// Sets the per-pane straggler timeout.
    pub fn with_pane_timeout(mut self, timeout: Duration) -> Self {
        self.pane_timeout = timeout;
        self
    }

    /// Sets how many respawns a shard is allowed before retiring.
    pub fn with_max_respawn(mut self, respawns: u32) -> Self {
        self.max_respawn = respawns;
        self
    }

    /// Sets how long a dead shard stays open for rejoin.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// The silence span after which a worker is declared dead
    /// (`heartbeat_interval × miss_budget`); `Duration::ZERO` when
    /// heartbeat detection is disabled.
    pub fn dead_after(&self) -> Duration {
        self.heartbeat_interval * self.miss_budget.max(1)
    }
}

impl Default for FaultPolicy {
    /// Half-second heartbeats with a 10-beat miss budget (a worker silent
    /// for 5s is dead), a 30s straggler pane timeout, up to 3 respawns per
    /// shard, and a 10s rejoin window before a dead shard degrades
    /// permanently.
    fn default() -> Self {
        FaultPolicy {
            heartbeat_interval: Duration::from_millis(500),
            miss_budget: 10,
            pane_timeout: Duration::from_secs(30),
            max_respawn: 3,
            backoff: Duration::from_secs(10),
        }
    }
}

/// One worker's liveness as the coordinator sees it, surfaced on
/// `WorkerStatus::health`.
///
/// The transitions are: `Healthy ↔ Suspect` (heartbeats late but inside
/// the miss budget), `{Healthy, Suspect} → Dead` (miss budget exhausted or
/// the connection dropped), `Dead → Healthy` (a replacement adopted the
/// shard), `Dead → Retired` (the rejoin window or respawn budget ran out —
/// the shard's remaining panes merge degraded), and `Healthy → Done`
/// (clean shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerHealth {
    /// Heartbeats and digests are arriving on schedule.
    #[default]
    Healthy,
    /// Heartbeats are overdue but the miss budget is not yet exhausted.
    Suspect,
    /// Declared dead (missed heartbeats, dropped connection, or a protocol
    /// violation); the shard is open for a replacement to adopt.
    Dead,
    /// Permanently failed: the rejoin window or respawn budget ran out, and
    /// the shard's remaining panes merge degraded.
    Retired,
    /// Shut down cleanly after shipping its trailing pane.
    Done,
}

impl fmt::Display for WorkerHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WorkerHealth::Healthy => "healthy",
            WorkerHealth::Suspect => "suspect",
            WorkerHealth::Dead => "dead",
            WorkerHealth::Retired => "retired",
            WorkerHealth::Done => "done",
        })
    }
}

impl WireEncode for WorkerHealth {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            WorkerHealth::Healthy => 0,
            WorkerHealth::Suspect => 1,
            WorkerHealth::Dead => 2,
            WorkerHealth::Retired => 3,
            WorkerHealth::Done => 4,
        });
    }
}

impl WireDecode for WorkerHealth {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(WorkerHealth::Healthy),
            1 => Ok(WorkerHealth::Suspect),
            2 => Ok(WorkerHealth::Dead),
            3 => Ok(WorkerHealth::Retired),
            4 => Ok(WorkerHealth::Done),
            tag => Err(SaError::Wire(format!("unknown worker health tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_builders_compose() {
        let p = FaultPolicy::default()
            .with_heartbeat_interval(Duration::from_millis(100))
            .with_miss_budget(3)
            .with_pane_timeout(Duration::from_secs(1))
            .with_max_respawn(1)
            .with_backoff(Duration::from_millis(250));
        assert_eq!(p.heartbeat_interval, Duration::from_millis(100));
        assert_eq!(p.miss_budget, 3);
        assert_eq!(p.dead_after(), Duration::from_millis(300));
        assert_eq!(p.pane_timeout, Duration::from_secs(1));
        assert_eq!(p.max_respawn, 1);
        assert_eq!(p.backoff, Duration::from_millis(250));
    }

    #[test]
    fn dead_after_clamps_miss_budget() {
        let p = FaultPolicy::default()
            .with_heartbeat_interval(Duration::from_millis(40))
            .with_miss_budget(0);
        assert_eq!(p.dead_after(), Duration::from_millis(40));
        // Disabled heartbeats mean no silence threshold at all.
        let off = FaultPolicy::default().with_heartbeat_interval(Duration::ZERO);
        assert_eq!(off.dead_after(), Duration::ZERO);
    }

    #[test]
    fn health_roundtrips_and_rejects_unknown_tags() {
        for h in [
            WorkerHealth::Healthy,
            WorkerHealth::Suspect,
            WorkerHealth::Dead,
            WorkerHealth::Retired,
            WorkerHealth::Done,
        ] {
            let bytes = h.to_wire_bytes();
            assert_eq!(WorkerHealth::from_wire_bytes(&bytes).unwrap(), h);
            assert!(!format!("{h}").is_empty());
        }
        assert!(matches!(
            WorkerHealth::from_wire_bytes(&[200]),
            Err(SaError::Wire(_))
        ));
        assert!(WorkerHealth::from_wire_bytes(&[]).is_err());
    }
}
