//! The shared error type.

use crate::item::EventTime;
use std::error::Error;
use std::fmt;

/// Errors shared across the StreamApprox workspace.
///
/// Crate-specific failures (e.g. an engine's channel teardown) convert into
/// this type at public API boundaries so applications handle one error type.
///
/// # Example
///
/// ```
/// use sa_types::SaError;
/// let err = SaError::InvalidBudget("sample fraction 2 outside (0, 1]".into());
/// assert!(err.to_string().contains("invalid query budget"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SaError {
    /// A query budget fails validation (zero, negative, or out of range).
    InvalidBudget(String),
    /// A computation was asked to run over an empty input where the
    /// semantics require at least one item.
    EmptyInput(&'static str),
    /// An engine component was configured inconsistently.
    InvalidConfig(String),
    /// A stream endpoint (channel, topic, consumer) was closed while data
    /// was still expected.
    Disconnected(&'static str),
    /// An item was pushed into a session behind its event-time watermark.
    /// Sessions require non-decreasing event times; replay out-of-order
    /// sources through a time-merge (e.g. `sa_aggregator::merge_by_time`)
    /// first.
    OutOfOrder {
        /// Event time of the rejected item.
        item: EventTime,
        /// The session watermark the item fell behind.
        watermark: EventTime,
    },
    /// A wire-format payload or frame failed to decode: truncated input,
    /// an unsupported version, a hostile length prefix, or a value that
    /// violates the decoded type's invariants. Decoding never panics and
    /// never trusts a length it has not bounded; it reports here instead.
    Wire(String),
    /// A checkpoint or restore operation failed: the engine does not
    /// support snapshots, the session was built without a record codec,
    /// the snapshot belongs to a different engine, or the backing store
    /// could not be read or written.
    Checkpoint(String),
}

impl fmt::Display for SaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaError::InvalidBudget(why) => write!(f, "invalid query budget: {why}"),
            SaError::EmptyInput(what) => write!(f, "empty input: {what}"),
            SaError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            SaError::Disconnected(what) => write!(f, "disconnected: {what}"),
            SaError::OutOfOrder { item, watermark } => write!(
                f,
                "out-of-order item: event time {item} behind watermark {watermark}"
            ),
            SaError::Wire(why) => write!(f, "wire format error: {why}"),
            SaError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
        }
    }
}

impl Error for SaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<SaError>();
    }

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        let samples = [
            SaError::InvalidBudget("x".into()),
            SaError::EmptyInput("window"),
            SaError::InvalidConfig("y".into()),
            SaError::Disconnected("sink"),
            SaError::OutOfOrder {
                item: EventTime::from_millis(5),
                watermark: EventTime::from_millis(9),
            },
            SaError::Wire("truncated varint".into()),
            SaError::Checkpoint("engine does not support snapshots".into()),
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }
}
