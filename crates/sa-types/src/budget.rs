//! Query budgets and confidence levels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Confidence level attached to an error bound.
///
/// The paper reports error bounds via the "68-95-99.7" rule (§3.3): the
/// approximate result falls within one, two, or three standard deviations of
/// the true result with probability 68%, 95% and 99.7% respectively.
///
/// # Example
///
/// ```
/// use sa_types::Confidence;
/// assert_eq!(Confidence::P95.z(), 2.0);
/// assert!(Confidence::P997.z() > Confidence::P68.z());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Confidence {
    /// One standard deviation: ~68% of results fall within the bound.
    P68,
    /// Two standard deviations: ~95% of results fall within the bound.
    #[default]
    P95,
    /// Three standard deviations: ~99.7% of results fall within the bound.
    P997,
}

impl Confidence {
    /// The number of standard deviations ("z value") this level corresponds
    /// to under the 68-95-99.7 rule used by the paper.
    #[inline]
    pub fn z(self) -> f64 {
        match self {
            Confidence::P68 => 1.0,
            Confidence::P95 => 2.0,
            Confidence::P997 => 3.0,
        }
    }

    /// Nominal coverage probability of the bound.
    #[inline]
    pub fn coverage(self) -> f64 {
        match self {
            Confidence::P68 => 0.6827,
            Confidence::P95 => 0.9545,
            Confidence::P997 => 0.9973,
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::P68 => write!(f, "68%"),
            Confidence::P95 => write!(f, "95%"),
            Confidence::P997 => write!(f, "99.7%"),
        }
    }
}

/// A user-specified query execution budget (§2.1 of the paper).
///
/// StreamApprox lets users trade output accuracy for computation efficiency
/// by declaring what they can afford; a *cost function* translates the budget
/// into a concrete sample size per window (the paper assumes such a function
/// exists — §2.3 assumption 1 — and sketches implementations in §7; the
/// `streamapprox` crate provides them).
///
/// # Example
///
/// ```
/// use sa_types::QueryBudget;
/// let budget = QueryBudget::SampleFraction(0.6);
/// assert!(matches!(budget, QueryBudget::SampleFraction(f) if f == 0.6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryBudget {
    /// Sample a fixed fraction of the arriving items (`0 < f <= 1`). This is
    /// the knob the paper's evaluation sweeps (10%–90%).
    SampleFraction(f64),
    /// Sample at most this many items per window, split across strata.
    SampleSize(usize),
    /// Keep the per-window processing latency below this many milliseconds;
    /// an adaptive controller shrinks or grows the sample to comply.
    LatencyMillis(u64),
    /// Keep the relative error of the answer below `max_relative_error`
    /// (e.g. `0.01` for 1%) at the given confidence; the controller grows the
    /// sample until the reported bound complies.
    Accuracy {
        /// Target relative half-width of the confidence interval.
        max_relative_error: f64,
        /// Confidence level at which the target must hold.
        confidence: Confidence,
    },
    /// Spend at most this many abstract resource tokens per window
    /// (Pulsar-style virtual-cost accounting, paper §7-I).
    ResourceTokens(u64),
}

impl QueryBudget {
    /// Validates the budget's parameters, returning a human-readable reason
    /// when the budget can never be satisfied.
    ///
    /// # Errors
    ///
    /// Returns `Err` if a fraction is outside `(0, 1]`, a size/latency/token
    /// budget is zero, or an accuracy target is not a positive fraction.
    pub fn validate(&self) -> Result<(), crate::SaError> {
        use crate::SaError::InvalidBudget;
        match *self {
            QueryBudget::SampleFraction(f) if !(f > 0.0 && f <= 1.0) => {
                Err(InvalidBudget(format!("sample fraction {f} outside (0, 1]")))
            }
            QueryBudget::SampleSize(0) => Err(InvalidBudget("sample size must be positive".into())),
            QueryBudget::LatencyMillis(0) => {
                Err(InvalidBudget("latency budget must be positive".into()))
            }
            QueryBudget::Accuracy {
                max_relative_error, ..
            } if !(max_relative_error > 0.0 && max_relative_error < 1.0) => Err(InvalidBudget(
                format!("accuracy target {max_relative_error} outside (0, 1)"),
            )),
            QueryBudget::ResourceTokens(0) => {
                Err(InvalidBudget("token budget must be positive".into()))
            }
            _ => Ok(()),
        }
    }
}

impl Default for QueryBudget {
    /// The fraction most experiments in the paper fix when sweeping other
    /// parameters: 60%.
    fn default() -> Self {
        QueryBudget::SampleFraction(0.6)
    }
}

impl fmt::Display for QueryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryBudget::SampleFraction(x) => write!(f, "fraction {:.0}%", x * 100.0),
            QueryBudget::SampleSize(n) => write!(f, "sample size {n}"),
            QueryBudget::LatencyMillis(ms) => write!(f, "latency {ms}ms"),
            QueryBudget::Accuracy {
                max_relative_error,
                confidence,
            } => write!(
                f,
                "accuracy {:.2}% @ {confidence}",
                max_relative_error * 100.0
            ),
            QueryBudget::ResourceTokens(t) => write!(f, "{t} tokens"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_follow_the_rule() {
        assert_eq!(Confidence::P68.z(), 1.0);
        assert_eq!(Confidence::P95.z(), 2.0);
        assert_eq!(Confidence::P997.z(), 3.0);
    }

    #[test]
    fn coverage_is_monotone_in_z() {
        assert!(Confidence::P68.coverage() < Confidence::P95.coverage());
        assert!(Confidence::P95.coverage() < Confidence::P997.coverage());
    }

    #[test]
    fn valid_budgets_pass() {
        for b in [
            QueryBudget::SampleFraction(0.1),
            QueryBudget::SampleFraction(1.0),
            QueryBudget::SampleSize(10),
            QueryBudget::LatencyMillis(250),
            QueryBudget::Accuracy {
                max_relative_error: 0.01,
                confidence: Confidence::P95,
            },
            QueryBudget::ResourceTokens(1_000),
        ] {
            assert!(b.validate().is_ok(), "{b}");
        }
    }

    #[test]
    fn invalid_budgets_fail() {
        for b in [
            QueryBudget::SampleFraction(0.0),
            QueryBudget::SampleFraction(1.5),
            QueryBudget::SampleFraction(-0.3),
            QueryBudget::SampleSize(0),
            QueryBudget::LatencyMillis(0),
            QueryBudget::Accuracy {
                max_relative_error: 0.0,
                confidence: Confidence::P68,
            },
            QueryBudget::Accuracy {
                max_relative_error: 1.0,
                confidence: Confidence::P68,
            },
            QueryBudget::ResourceTokens(0),
        ] {
            assert!(b.validate().is_err(), "{b}");
        }
    }

    #[test]
    fn default_budget_matches_paper_sweeps() {
        assert_eq!(QueryBudget::default(), QueryBudget::SampleFraction(0.6));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(QueryBudget::SampleFraction(0.6).to_string(), "fraction 60%");
        assert_eq!(Confidence::P997.to_string(), "99.7%");
    }
}
