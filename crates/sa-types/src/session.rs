//! Session status reporting.

use crate::item::EventTime;

/// A point-in-time snapshot of an incremental session's progress,
/// returned by `ApproxSession::status` in the `streamapprox` crate.
///
/// The counters describe what the *caller* has observed through the
/// session handle: items accepted by `push`, windows drained through
/// `poll_windows`, and the event-time frontier of the accepted input.
/// Engine-internal progress (e.g. panes in flight inside a threaded
/// pipeline) is deliberately not exposed — it would race the caller.
///
/// # Example
///
/// ```
/// use sa_types::{EventTime, SessionStatus};
///
/// let status = SessionStatus {
///     items_pushed: 1_000,
///     windows_completed: 3,
///     watermark: Some(EventTime::from_secs(4)),
/// };
/// assert!(status.watermark.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Items accepted by `push`/`push_batch` so far.
    pub items_pushed: u64,
    /// Windows the caller has drained through `poll_windows` so far (not
    /// counting those returned by `finish`).
    pub windows_completed: u64,
    /// The event-time high-water mark of accepted input: the time of the
    /// latest pushed item, `None` before the first item. Pushing an item
    /// behind this watermark is an out-of-order error.
    pub watermark: Option<EventTime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_is_comparable_and_copy() {
        let a = SessionStatus {
            items_pushed: 7,
            windows_completed: 1,
            watermark: None,
        };
        let b = a; // Copy
        assert_eq!(a, b);
        assert!(format!("{a:?}").contains("items_pushed: 7"));
    }
}
