//! Session status reporting.

use crate::fault::WorkerHealth;
use crate::item::EventTime;

/// Unified ingest accounting: what happened to the items a session (or one
/// of its ingestion paths) was offered.
///
/// Every way items enter a session — `push`/`push_batch`, a consumer poll
/// via `ingest_consumer`, or an engine-internal path — reports through
/// this one struct: items accepted into the engine versus items behind the
/// watermark dropped as late data. `ApproxSession::ingest_consumer`
/// returns the per-call delta; `SessionStatus::ingest` accumulates the
/// run-wide totals.
///
/// # Example
///
/// ```
/// use sa_types::IngestCounters;
///
/// let mut total = IngestCounters::default();
/// total.absorb(IngestCounters { ingested: 10, dropped_late: 2 });
/// total.absorb(IngestCounters { ingested: 5, dropped_late: 0 });
/// assert_eq!(total.offered(), 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestCounters {
    /// Items accepted into the session's engine.
    pub ingested: u64,
    /// Items behind the session watermark, dropped as late data.
    pub dropped_late: u64,
}

impl IngestCounters {
    /// Accumulates another accounting delta into this one.
    pub fn absorb(&mut self, delta: IngestCounters) {
        self.ingested += delta.ingested;
        self.dropped_late += delta.dropped_late;
    }

    /// Total items offered (accepted plus dropped).
    pub fn offered(&self) -> u64 {
        self.ingested + self.dropped_late
    }
}

/// One shard's lifetime counters inside a data-parallel engine, as of the
/// last closed interval: how many items the shard's sampler was offered,
/// how many it selected for aggregation, and how the router's chunk
/// buffers cycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardIngest {
    /// The shard's index (canonical merge order).
    pub shard: usize,
    /// Items routed to and observed by this shard's sampler.
    pub ingested: u64,
    /// Items this shard's sampler selected for aggregation.
    pub sampled: u64,
    /// Chunk buffers shipped to this shard by the router.
    pub chunks_routed: u64,
    /// Of those, buffers reused from the shard fabric's return ring
    /// rather than freshly allocated. At steady state this tracks
    /// `chunks_routed` with a constant offset (the fabric's ring depth),
    /// i.e. routing allocates nothing per chunk.
    pub chunks_recycled: u64,
}

/// One remote worker's last reported progress inside a distributed
/// session, as of its most recent heartbeat or pane digest: the worker's
/// unified [`IngestCounters`], its event-time watermark, and how far it
/// lags behind its source (outstanding items in the replay log it has not
/// yet consumed). The distributed coordinator surfaces one entry per
/// connected worker on [`SessionStatus::workers`], mirroring the per-shard
/// visibility `ShardedEngine` gives through
/// [`SessionStatus::shards`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStatus {
    /// The worker's id (canonical merge order).
    pub worker: u32,
    /// The worker's unified ingest accounting (accepted vs dropped-late).
    pub ingest: IngestCounters,
    /// The worker's event-time watermark; `None` before its first item.
    pub watermark: Option<EventTime>,
    /// Items outstanding between the worker and its source (0 = caught up).
    pub lag: u64,
    /// The pane start (ms) of the worker's last checkpoint; `None` if the
    /// worker has never checkpointed.
    pub last_checkpoint_pane: Option<i64>,
    /// Items the worker ingested since its last checkpoint — its current
    /// exposure to loss on a crash.
    pub items_since_checkpoint: u64,
    /// Encoded size of the worker's last snapshot in bytes (0 before the
    /// first checkpoint).
    pub snapshot_bytes: u64,
    /// The worker's liveness as the coordinator sees it.
    pub health: WorkerHealth,
    /// How many times this worker's shard has been re-adopted by a
    /// replacement after a failure (0 for the original worker).
    pub respawns: u32,
}

/// A point-in-time snapshot of an incremental session's progress,
/// returned by `ApproxSession::status` in the `streamapprox` crate.
///
/// The counters describe what the *caller* has observed through the
/// session handle: items accepted by `push`, windows drained through
/// `poll_windows`, the event-time frontier of the accepted input, and the
/// unified [`IngestCounters`] covering every ingestion path. For sharded
/// engines, [`shards`](SessionStatus::shards) additionally reports each
/// shard's sampler counters as of the last closed interval (per-interval
/// progress inside a running pane is deliberately not exposed — it would
/// race the caller).
///
/// # Example
///
/// ```
/// use sa_types::{EventTime, IngestCounters, SessionStatus};
///
/// let status = SessionStatus {
///     items_pushed: 1_000,
///     windows_completed: 3,
///     watermark: Some(EventTime::from_secs(4)),
///     ingest: IngestCounters { ingested: 1_000, dropped_late: 7 },
///     shards: Vec::new(),
///     workers: Vec::new(),
///     last_checkpoint_pane: None,
///     items_since_checkpoint: 1_000,
///     snapshot_bytes: 0,
///     degraded_panes: 0,
///     lost_items: 0,
/// };
/// assert_eq!(status.ingest.offered(), 1_007);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStatus {
    /// Items accepted by `push`/`push_batch` so far (equals
    /// `ingest.ingested`; kept as the headline counter).
    pub items_pushed: u64,
    /// Windows the caller has drained through `poll_windows` so far (not
    /// counting those returned by `finish`).
    pub windows_completed: u64,
    /// The event-time high-water mark of accepted input: the time of the
    /// latest pushed item, `None` before the first item. Pushing an item
    /// behind this watermark is an out-of-order error.
    pub watermark: Option<EventTime>,
    /// Unified accounting across every ingestion path: accepted items and
    /// late items dropped (whether rejected from `push` or discarded by
    /// `ingest_consumer`).
    pub ingest: IngestCounters,
    /// Per-shard sampler counters for data-parallel engines, in shard
    /// order; empty on single-worker engines.
    pub shards: Vec<ShardIngest>,
    /// Per-remote-worker progress for distributed sessions, in worker-id
    /// order; empty on local engines.
    pub workers: Vec<WorkerStatus>,
    /// The pane start (ms) the session's last checkpoint covered; `None`
    /// if the session has never checkpointed.
    pub last_checkpoint_pane: Option<i64>,
    /// Items accepted since the last checkpoint — the session's current
    /// exposure to loss on a crash (equals `items_pushed` before the first
    /// checkpoint).
    pub items_since_checkpoint: u64,
    /// Encoded size of the last session snapshot in bytes (0 before the
    /// first checkpoint).
    pub snapshot_bytes: u64,
    /// Panes a distributed coordinator merged without every live shard's
    /// digest (0 on local engines and on healthy runs).
    pub degraded_panes: u64,
    /// Estimated items lost to dead shards across all degraded panes; the
    /// same shortfall the estimator folds into widened error bounds.
    pub lost_items: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_is_comparable_and_cloneable() {
        let a = SessionStatus {
            items_pushed: 7,
            windows_completed: 1,
            watermark: None,
            ingest: IngestCounters {
                ingested: 7,
                dropped_late: 0,
            },
            shards: vec![ShardIngest {
                shard: 0,
                ingested: 7,
                sampled: 3,
                chunks_routed: 2,
                chunks_recycled: 1,
            }],
            workers: vec![WorkerStatus {
                worker: 0,
                ingest: IngestCounters {
                    ingested: 7,
                    dropped_late: 0,
                },
                watermark: None,
                lag: 2,
                last_checkpoint_pane: Some(0),
                items_since_checkpoint: 3,
                snapshot_bytes: 64,
                health: WorkerHealth::Healthy,
                respawns: 0,
            }],
            last_checkpoint_pane: None,
            items_since_checkpoint: 7,
            snapshot_bytes: 0,
            degraded_panes: 0,
            lost_items: 0,
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert!(format!("{a:?}").contains("items_pushed: 7"));
    }

    #[test]
    fn ingest_counters_absorb_and_total() {
        let mut c = IngestCounters::default();
        c.absorb(IngestCounters {
            ingested: 3,
            dropped_late: 1,
        });
        assert_eq!(c.ingested, 3);
        assert_eq!(c.dropped_late, 1);
        assert_eq!(c.offered(), 4);
    }
}
