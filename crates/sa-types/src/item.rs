//! Stream items, strata and event time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Identifier of a stratum (sub-stream).
///
/// The paper assumes the input stream is stratified based on the source of
/// data items (§2.3): all items from one source follow the same distribution,
/// and sources with identical distributions may share a stratum. A
/// `StratumId` is therefore assigned by whatever produced the item — a
/// workload generator, an aggregator topic, or a user-provided classifier.
///
/// # Example
///
/// ```
/// use sa_types::StratumId;
/// let tcp = StratumId(0);
/// let udp = StratumId(1);
/// assert_ne!(tcp, udp);
/// assert_eq!(tcp.index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StratumId(pub u32);

impl StratumId {
    /// Returns the stratum id as a `usize`, convenient for indexing
    /// per-stratum tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StratumId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for StratumId {
    fn from(v: u32) -> Self {
        StratumId(v)
    }
}

/// Event time of a stream item, in milliseconds since an arbitrary epoch.
///
/// Both engines in this workspace are driven purely by event time: the
/// replay tool assigns timestamps according to the configured arrival rates,
/// and windowing, watermarks and batch boundaries all derive from those
/// timestamps. This keeps every experiment deterministic and lets benchmarks
/// run at full machine speed regardless of the simulated arrival rate.
///
/// # Example
///
/// ```
/// use sa_types::EventTime;
/// let t = EventTime::from_secs(10);
/// assert_eq!(t.as_millis(), 10_000);
/// assert_eq!(t + 500, EventTime::from_millis(10_500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EventTime(i64);

impl EventTime {
    /// The smallest representable event time; useful as an initial watermark.
    pub const MIN: EventTime = EventTime(i64::MIN);
    /// The largest representable event time; a watermark of `MAX` flushes
    /// every open window.
    pub const MAX: EventTime = EventTime(i64::MAX);

    /// Creates an event time from milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        EventTime(ms)
    }

    /// Creates an event time from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        EventTime(secs * 1_000)
    }

    /// Returns the raw millisecond count.
    #[inline]
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Returns the time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction, returning the difference in milliseconds.
    #[inline]
    pub fn millis_since(self, earlier: EventTime) -> i64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for EventTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl Add<i64> for EventTime {
    type Output = EventTime;
    #[inline]
    fn add(self, rhs: i64) -> EventTime {
        EventTime(self.0 + rhs)
    }
}

impl Sub<i64> for EventTime {
    type Output = EventTime;
    #[inline]
    fn sub(self, rhs: i64) -> EventTime {
        EventTime(self.0 - rhs)
    }
}

impl From<i64> for EventTime {
    fn from(ms: i64) -> Self {
        EventTime(ms)
    }
}

/// A single data item flowing through the system.
///
/// Every item carries the [`StratumId`] of the sub-stream it came from, its
/// [`EventTime`], and a payload `V`. For the paper's *linear queries* (sum,
/// mean, count, histogram — §3.2) the payload is queried through a
/// user-supplied numeric projection, so `V` stays fully generic here.
///
/// # Example
///
/// ```
/// use sa_types::{StreamItem, StratumId, EventTime};
/// let item = StreamItem::new(StratumId(2), EventTime::from_millis(5), 3.25_f64);
/// assert_eq!(item.stratum, StratumId(2));
/// assert_eq!(item.value, 3.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamItem<V> {
    /// The sub-stream (stratum) this item belongs to.
    pub stratum: StratumId,
    /// Event time assigned at the source.
    pub time: EventTime,
    /// The payload.
    pub value: V,
}

impl<V> StreamItem<V> {
    /// Creates a new stream item.
    #[inline]
    pub fn new(stratum: StratumId, time: EventTime, value: V) -> Self {
        StreamItem {
            stratum,
            time,
            value,
        }
    }

    /// Maps the payload, keeping stratum and timestamp.
    ///
    /// ```
    /// use sa_types::{StreamItem, StratumId, EventTime};
    /// let item = StreamItem::new(StratumId(0), EventTime::from_millis(1), 2_u32);
    /// let doubled = item.map(|v| v * 2);
    /// assert_eq!(doubled.value, 4);
    /// ```
    #[inline]
    pub fn map<U, F: FnOnce(V) -> U>(self, f: F) -> StreamItem<U> {
        StreamItem {
            stratum: self.stratum,
            time: self.time,
            value: f(self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratum_id_roundtrip_and_display() {
        let s = StratumId(7);
        assert_eq!(s.index(), 7);
        assert_eq!(s.to_string(), "S7");
        assert_eq!(StratumId::from(7u32), s);
    }

    #[test]
    fn event_time_arithmetic() {
        let t = EventTime::from_secs(2);
        assert_eq!(t.as_millis(), 2_000);
        assert_eq!((t + 250).as_millis(), 2_250);
        assert_eq!((t - 250).as_millis(), 1_750);
        assert_eq!((t + 500).millis_since(t), 500);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn event_time_ordering() {
        assert!(EventTime::from_millis(1) < EventTime::from_millis(2));
        assert!(EventTime::MIN < EventTime::from_millis(0));
        assert!(EventTime::MAX > EventTime::from_millis(0));
    }

    #[test]
    fn millis_since_saturates() {
        assert_eq!(EventTime::MIN.millis_since(EventTime::MAX), i64::MIN);
    }

    #[test]
    fn item_map_preserves_metadata() {
        let item = StreamItem::new(StratumId(1), EventTime::from_millis(9), 10i64);
        let mapped = item.map(|v| v as f64 / 2.0);
        assert_eq!(mapped.stratum, StratumId(1));
        assert_eq!(mapped.time, EventTime::from_millis(9));
        assert_eq!(mapped.value, 5.0);
    }
}
