//! Sliding-window specification and assignment.
//!
//! Both stream-processing models support time-based sliding windows (§2.2 of
//! the paper): a window of `size` slides by `slide`, newly arriving items are
//! added and old items removed as the window moves. The evaluation uses a
//! 10-second window sliding by 5 seconds (§6.1).

use crate::item::EventTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete half-open time window `[start, end)`.
///
/// # Example
///
/// ```
/// use sa_types::{Window, EventTime};
/// let w = Window::new(EventTime::from_secs(0), EventTime::from_secs(10));
/// assert!(w.contains(EventTime::from_secs(5)));
/// assert!(!w.contains(EventTime::from_secs(10)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Window {
    /// Inclusive start of the window.
    pub start: EventTime,
    /// Exclusive end of the window.
    pub end: EventTime,
}

impl Window {
    /// Creates a window covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` (empty or inverted windows are never valid).
    pub fn new(start: EventTime, end: EventTime) -> Self {
        assert!(end > start, "window end must be after start");
        Window { start, end }
    }

    /// Whether `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: EventTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length in milliseconds.
    #[inline]
    pub fn len_millis(&self) -> i64 {
        self.end.millis_since(self.start)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A sliding-window specification: window `size` and `slide` step, both in
/// milliseconds.
///
/// When `slide == size` the windows tumble (each instant belongs to exactly
/// one window); when `slide < size` each instant belongs to `size / slide`
/// overlapping windows. Windows are aligned to multiples of `slide` from
/// event-time zero, matching the usual engine behaviour.
///
/// # Example
///
/// ```
/// use sa_types::{WindowSpec, EventTime};
/// let spec = WindowSpec::sliding_secs(10, 5);
/// let ws: Vec<_> = spec.windows_containing(EventTime::from_secs(7)).collect();
/// assert_eq!(ws.len(), 2);
/// assert_eq!(ws[0].start, EventTime::from_secs(0));
/// assert_eq!(ws[1].start, EventTime::from_secs(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpec {
    size_ms: i64,
    slide_ms: i64,
}

impl WindowSpec {
    /// Creates a sliding-window spec from millisecond durations.
    ///
    /// # Panics
    ///
    /// Panics if `size_ms == 0`, `slide_ms == 0`, or `slide_ms > size_ms`
    /// (gaps between windows would silently drop items).
    pub fn sliding_millis(size_ms: i64, slide_ms: i64) -> Self {
        assert!(size_ms > 0, "window size must be positive");
        assert!(slide_ms > 0, "window slide must be positive");
        assert!(
            slide_ms <= size_ms,
            "slide larger than size would drop items"
        );
        WindowSpec { size_ms, slide_ms }
    }

    /// Creates a sliding-window spec from second durations.
    pub fn sliding_secs(size_s: i64, slide_s: i64) -> Self {
        Self::sliding_millis(size_s * 1_000, slide_s * 1_000)
    }

    /// Creates a tumbling-window spec (slide equals size).
    pub fn tumbling_millis(size_ms: i64) -> Self {
        Self::sliding_millis(size_ms, size_ms)
    }

    /// Window size in milliseconds.
    #[inline]
    pub fn size_millis(&self) -> i64 {
        self.size_ms
    }

    /// Slide step in milliseconds.
    #[inline]
    pub fn slide_millis(&self) -> i64 {
        self.slide_ms
    }

    /// Number of overlapping windows that cover any single instant.
    #[inline]
    pub fn overlap(&self) -> usize {
        (self.size_ms / self.slide_ms) as usize
    }

    /// All windows that contain event time `t`, earliest first.
    ///
    /// There are at most `ceil(size / slide)` such windows. Windows never
    /// start before event time zero, mirroring engines that only open windows
    /// once the stream has started.
    pub fn windows_containing(&self, t: EventTime) -> impl Iterator<Item = Window> + '_ {
        let ts = t.as_millis();
        // Start of the latest window containing t: floor(ts / slide) * slide.
        let last_start = ts.div_euclid(self.slide_ms) * self.slide_ms;
        // Earliest possible start: the first multiple of slide that is
        // > ts - size, clamped to zero.
        let earliest =
            (ts - self.size_ms).div_euclid(self.slide_ms) * self.slide_ms + self.slide_ms;
        let first_start = earliest.max(0).min(last_start);
        let size = self.size_ms;
        let slide = self.slide_ms;
        (0..)
            .map(move |k| first_start + k * slide)
            .take_while(move |s| *s <= last_start)
            .map(move |s| Window::new(EventTime::from_millis(s), EventTime::from_millis(s + size)))
    }

    /// The single window starting at `start` under this spec.
    pub fn window_at(&self, start: EventTime) -> Window {
        Window::new(start, start + self.size_ms)
    }
}

impl Default for WindowSpec {
    /// The paper's evaluation default: a 10-second window sliding by 5
    /// seconds (§6.1).
    fn default() -> Self {
        WindowSpec::sliding_secs(10, 5)
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window({}ms / slide {}ms)", self.size_ms, self.slide_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_half_open() {
        let w = Window::new(EventTime::from_millis(100), EventTime::from_millis(200));
        assert!(w.contains(EventTime::from_millis(100)));
        assert!(w.contains(EventTime::from_millis(199)));
        assert!(!w.contains(EventTime::from_millis(200)));
        assert!(!w.contains(EventTime::from_millis(99)));
        assert_eq!(w.len_millis(), 100);
    }

    #[test]
    #[should_panic(expected = "window end must be after start")]
    fn window_rejects_inverted() {
        let _ = Window::new(EventTime::from_millis(5), EventTime::from_millis(5));
    }

    #[test]
    fn tumbling_assigns_exactly_one_window() {
        let spec = WindowSpec::tumbling_millis(1_000);
        for ms in [0, 1, 999, 1_000, 1_500, 9_999] {
            let ws: Vec<_> = spec
                .windows_containing(EventTime::from_millis(ms))
                .collect();
            assert_eq!(ws.len(), 1, "t={ms}");
            assert!(ws[0].contains(EventTime::from_millis(ms)));
            assert_eq!(ws[0].start.as_millis() % 1_000, 0);
        }
    }

    #[test]
    fn sliding_assigns_overlap_windows() {
        let spec = WindowSpec::sliding_secs(10, 5);
        assert_eq!(spec.overlap(), 2);
        let ws: Vec<_> = spec.windows_containing(EventTime::from_secs(12)).collect();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].start, EventTime::from_secs(5));
        assert_eq!(ws[1].start, EventTime::from_secs(10));
        for w in ws {
            assert!(w.contains(EventTime::from_secs(12)));
        }
    }

    #[test]
    fn early_times_clamp_to_stream_start() {
        let spec = WindowSpec::sliding_secs(10, 5);
        // t=2s is only covered by the window starting at 0 (a window starting
        // at -5s never opens).
        let ws: Vec<_> = spec.windows_containing(EventTime::from_secs(2)).collect();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].start, EventTime::from_secs(0));
    }

    #[test]
    fn default_matches_paper_setup() {
        let spec = WindowSpec::default();
        assert_eq!(spec.size_millis(), 10_000);
        assert_eq!(spec.slide_millis(), 5_000);
    }

    #[test]
    #[should_panic(expected = "slide larger than size")]
    fn rejects_gappy_spec() {
        let _ = WindowSpec::sliding_millis(5, 10);
    }

    #[test]
    fn windows_containing_are_all_and_only_the_covers() {
        // Brute-force cross-check against a direct scan of candidate starts.
        let spec = WindowSpec::sliding_millis(30, 10);
        for ms in 0..200 {
            let t = EventTime::from_millis(ms);
            let got: Vec<_> = spec.windows_containing(t).collect();
            let expected: Vec<_> = (0..=ms / 10)
                .map(|k| spec.window_at(EventTime::from_millis(k * 10)))
                .filter(|w| w.contains(t))
                .collect();
            assert_eq!(got, expected, "t={ms}");
        }
    }
}
