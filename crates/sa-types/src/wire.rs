//! The compact, versioned binary wire format for mergeable state.
//!
//! The distributed tier ships sampler digests between processes (workers →
//! coordinator) as byte payloads over TCP. This module defines the codec
//! those payloads use: hand-rolled, dependency-free, and *strict* — every
//! decoder validates the invariants of the type it produces (a
//! [`Window`] whose end precedes its start, a [`StratumSample`] claiming
//! more items than population, a hostile length prefix) and reports
//! [`SaError::Wire`] instead of panicking or over-allocating.
//!
//! Encoding rules:
//!
//! * unsigned integers (`u32`/`u64`/`usize`) — LEB128 varints, at most 10
//!   bytes, minimal length enforced on decode;
//! * signed integers (`i64`, event times, window bounds) — zigzag-mapped
//!   varints, so small magnitudes of either sign stay short;
//! * `f64` — the raw IEEE-754 bits, little-endian, so samples and
//!   statistics round-trip *bit-identically* (the distributed acceptance
//!   test depends on this: decode-then-merge must equal merging the
//!   originals);
//! * sequences — a varint length (checked against the bytes actually
//!   remaining before any allocation) followed by the elements;
//! * options — a one-byte presence tag.
//!
//! Versioning lives one layer up, in the frame header (`sa-net`): a frame
//! carries the format version for its whole payload, so individual values
//! stay tag-free and compact.

use crate::budget::Confidence;
use crate::error::SaError;
use crate::fault::WorkerHealth;
use crate::item::{EventTime, StratumId};
use crate::result::{ApproxResult, ErrorBound};
use crate::sample::{StratifiedSample, StratumSample};
use crate::seed::RunSeed;
use crate::session::{IngestCounters, ShardIngest, WorkerStatus};
use crate::window::{Window, WindowSpec};

/// Serializes a value into the workspace wire format.
///
/// Implementations append to the output buffer; composite types encode
/// field-by-field in declaration order. Encoding is total — it cannot fail
/// — because every in-memory value of an encodable type is representable.
pub trait WireEncode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Encodes into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Deserializes a value from the workspace wire format.
///
/// Decoding is strict: input that is truncated, non-minimal, out of range,
/// or violates the target type's invariants yields [`SaError::Wire`].
/// Decoders never panic and never allocate more than the input could
/// possibly describe.
pub trait WireDecode: Sized {
    /// Reads one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] on malformed input.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError>;

    /// Decodes a value that must span the *entire* byte slice; trailing
    /// bytes are an error (a digest with junk appended is not the digest).
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] on malformed input or trailing bytes.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, SaError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// A bounds-checked cursor over an encoded byte slice.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SaError> {
        if n > self.remaining() {
            return Err(SaError::Wire(format!(
                "truncated input: needed {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] if the input is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, SaError> {
        Ok(self.take(1)?[0])
    }

    /// Reads `n` raw bytes as a slice borrowed from the input — the bulk
    /// path for opaque payloads (nested snapshot state, UTF-8 strings)
    /// whose length was already bounds-checked by [`WireReader::read_len`].
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] if fewer than `n` bytes remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], SaError> {
        self.take(n)
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] on truncation, a value exceeding 64 bits,
    /// or a non-minimal encoding.
    pub fn read_varint(&mut self) -> Result<u64, SaError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8().map_err(|_| {
                SaError::Wire("truncated varint: input ended mid-value".to_string())
            })?;
            if shift == 63 && byte > 0x01 {
                return Err(SaError::Wire("varint overflows 64 bits".to_string()));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                if byte == 0 && shift != 0 {
                    return Err(SaError::Wire("non-minimal varint encoding".to_string()));
                }
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// Propagates [`WireReader::read_varint`] failures.
    pub fn read_zigzag(&mut self) -> Result<i64, SaError> {
        let z = self.read_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a little-endian IEEE-754 double, bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] if fewer than 8 bytes remain.
    pub fn read_f64(&mut self) -> Result<f64, SaError> {
        Ok(f64::from_bits(self.read_u64_le()?))
    }

    /// Reads a fixed-width little-endian `u64` — used for full-entropy
    /// words (RNG state) where a varint would cost more than it saves.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] if fewer than 8 bytes remain.
    pub fn read_u64_le(&mut self) -> Result<u64, SaError> {
        let bytes = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a sequence-length prefix, rejecting any length that exceeds
    /// the bytes actually remaining — the guard that makes a hostile
    /// length prefix harmless (no allocation ever exceeds the input size).
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] on a malformed varint or an impossible
    /// length.
    pub fn read_len(&mut self) -> Result<usize, SaError> {
        let n = self.read_varint()?;
        let n = usize::try_from(n)
            .map_err(|_| SaError::Wire(format!("length prefix {n} exceeds address space")))?;
        if n > self.remaining() {
            return Err(SaError::Wire(format!(
                "length prefix {n} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Asserts the input was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`SaError::Wire`] if bytes remain.
    pub fn finish(self) -> Result<(), SaError> {
        if self.remaining() != 0 {
            return Err(SaError::Wire(format!(
                "{} trailing bytes after value",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends a fixed-width little-endian `u64` (see
/// [`WireReader::read_u64_le`]).
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---- primitive impls -------------------------------------------------------

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SaError::Wire(format!("invalid bool tag {t}"))),
        }
    }
}

impl WireEncode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl WireDecode for u8 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        r.read_u8()
    }
}

impl WireEncode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
}

impl WireDecode for u32 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let v = r.read_varint()?;
        u32::try_from(v).map_err(|_| SaError::Wire(format!("value {v} exceeds u32 range")))
    }
}

impl WireEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        r.read_varint()
    }
}

impl WireEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let v = r.read_varint()?;
        usize::try_from(v).map_err(|_| SaError::Wire(format!("value {v} exceeds usize range")))
    }
}

impl WireEncode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_zigzag(out, *self);
    }
}

impl WireDecode for i64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        r.read_zigzag()
    }
}

impl WireEncode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl WireDecode for f64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        r.read_f64()
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(SaError::Wire(format!("invalid option tag {t}"))),
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        // Every element of every wire type occupies at least one byte, so a
        // length prefix larger than the remaining input is provably hostile
        // and read_len rejects it before this Vec ever allocates.
        let len = r.read_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let len = r.read_len()?;
        let bytes = r.read_bytes(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| SaError::Wire("string payload is not valid utf-8".to_string()))
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---- domain impls ----------------------------------------------------------

impl WireEncode for StratumId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl WireDecode for StratumId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(StratumId(u32::decode(r)?))
    }
}

impl WireEncode for EventTime {
    fn encode(&self, out: &mut Vec<u8>) {
        put_zigzag(out, self.as_millis());
    }
}

impl WireDecode for EventTime {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(EventTime::from_millis(r.read_zigzag()?))
    }
}

impl WireEncode for RunSeed {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.value());
    }
}

impl WireDecode for RunSeed {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(RunSeed::new(r.read_varint()?))
    }
}

impl WireEncode for Window {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
    }
}

impl WireDecode for Window {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let start = EventTime::decode(r)?;
        let end = EventTime::decode(r)?;
        if end <= start {
            return Err(SaError::Wire(format!(
                "window end {end} not after start {start}"
            )));
        }
        Ok(Window::new(start, end))
    }
}

impl WireEncode for WindowSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        put_zigzag(out, self.size_millis());
        put_zigzag(out, self.slide_millis());
    }
}

impl WireDecode for WindowSpec {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let size = r.read_zigzag()?;
        let slide = r.read_zigzag()?;
        if size <= 0 || slide <= 0 || slide > size {
            return Err(SaError::Wire(format!(
                "invalid window spec: size {size}ms slide {slide}ms"
            )));
        }
        Ok(WindowSpec::sliding_millis(size, slide))
    }
}

impl WireEncode for Confidence {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Confidence::P68 => 0,
            Confidence::P95 => 1,
            Confidence::P997 => 2,
        });
    }
}

impl WireDecode for Confidence {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        match r.read_u8()? {
            0 => Ok(Confidence::P68),
            1 => Ok(Confidence::P95),
            2 => Ok(Confidence::P997),
            t => Err(SaError::Wire(format!("unknown confidence tag {t}"))),
        }
    }
}

impl WireEncode for ErrorBound {
    fn encode(&self, out: &mut Vec<u8>) {
        self.margin().encode(out);
        self.confidence().encode(out);
    }
}

impl WireDecode for ErrorBound {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let margin = r.read_f64()?;
        let confidence = Confidence::decode(r)?;
        if !(margin >= 0.0 && margin.is_finite()) {
            return Err(SaError::Wire(format!(
                "error margin {margin} not a non-negative finite number"
            )));
        }
        Ok(ErrorBound::new(margin, confidence))
    }
}

impl WireEncode for ApproxResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
        self.bound.encode(out);
        put_varint(out, self.sample_size);
        put_varint(out, self.population_size);
    }
}

impl WireDecode for ApproxResult {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(ApproxResult {
            value: r.read_f64()?,
            bound: ErrorBound::decode(r)?,
            sample_size: r.read_varint()?,
            population_size: r.read_varint()?,
        })
    }
}

impl WireEncode for IngestCounters {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.ingested);
        put_varint(out, self.dropped_late);
    }
}

impl WireDecode for IngestCounters {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(IngestCounters {
            ingested: r.read_varint()?,
            dropped_late: r.read_varint()?,
        })
    }
}

impl WireEncode for ShardIngest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        put_varint(out, self.ingested);
        put_varint(out, self.sampled);
        put_varint(out, self.chunks_routed);
        put_varint(out, self.chunks_recycled);
    }
}

impl WireDecode for ShardIngest {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(ShardIngest {
            shard: usize::decode(r)?,
            ingested: r.read_varint()?,
            sampled: r.read_varint()?,
            chunks_routed: r.read_varint()?,
            chunks_recycled: r.read_varint()?,
        })
    }
}

impl WireEncode for WorkerStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        self.worker.encode(out);
        self.ingest.encode(out);
        self.watermark.encode(out);
        put_varint(out, self.lag);
        self.last_checkpoint_pane.encode(out);
        put_varint(out, self.items_since_checkpoint);
        put_varint(out, self.snapshot_bytes);
        self.health.encode(out);
        self.respawns.encode(out);
    }
}

impl WireDecode for WorkerStatus {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(WorkerStatus {
            worker: u32::decode(r)?,
            ingest: IngestCounters::decode(r)?,
            watermark: Option::<EventTime>::decode(r)?,
            lag: r.read_varint()?,
            last_checkpoint_pane: Option::<i64>::decode(r)?,
            items_since_checkpoint: r.read_varint()?,
            snapshot_bytes: r.read_varint()?,
            health: WorkerHealth::decode(r)?,
            respawns: u32::decode(r)?,
        })
    }
}

impl<V: WireEncode> WireEncode for StratumSample<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.stratum.encode(out);
        put_varint(out, self.population);
        self.capacity.encode(out);
        self.items.encode(out);
    }
}

impl<V: WireDecode> WireDecode for StratumSample<V> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let stratum = StratumId::decode(r)?;
        let population = r.read_varint()?;
        let capacity = usize::decode(r)?;
        let items = Vec::<V>::decode(r)?;
        if items.len() as u64 > population {
            return Err(SaError::Wire(format!(
                "stratum {stratum} claims {} sampled of population {population}",
                items.len()
            )));
        }
        Ok(StratumSample {
            stratum,
            items,
            population,
            capacity,
        })
    }
}

impl<V: WireEncode> WireEncode for StratifiedSample<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.num_strata() as u64);
        for s in self.iter() {
            s.encode(out);
        }
    }
}

impl<V: WireDecode> WireDecode for StratifiedSample<V> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let len = r.read_len()?;
        let mut out = StratifiedSample::new();
        let mut last: Option<StratumId> = None;
        for _ in 0..len {
            let s = StratumSample::<V>::decode(r)?;
            // The canonical form is strictly ascending stratum order —
            // what every encoder in this workspace produces. Enforcing it
            // here keeps decode O(n) honest (each push appends) and makes
            // the encoding of a sample unique.
            if let Some(prev) = last {
                if s.stratum <= prev {
                    return Err(SaError::Wire(format!(
                        "strata out of order: {} after {prev}",
                        s.stratum
                    )));
                }
            }
            last = Some(s.stratum);
            out.push(s);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire_bytes();
        let back = T::from_wire_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(&back, v, "roundtrip through {} bytes", bytes.len());
    }

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            roundtrip(&v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MIN, i64::MAX] {
            roundtrip(&v);
        }
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            roundtrip(&v);
        }
        roundtrip(&true);
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1u64, 2, 3]);
    }

    #[test]
    fn nan_bits_survive() {
        let bits = 0x7FF8_0000_DEAD_BEEFu64;
        let v = f64::from_bits(bits);
        let back = f64::from_wire_bytes(&v.to_wire_bytes()).unwrap();
        assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn domain_types_roundtrip() {
        roundtrip(&StratumId(7));
        roundtrip(&EventTime::from_millis(-12_345));
        roundtrip(&RunSeed::new(0xDEAD_BEEF));
        roundtrip(&Window::new(
            EventTime::from_millis(-500),
            EventTime::from_millis(1_500),
        ));
        roundtrip(&WindowSpec::sliding_secs(10, 5));
        roundtrip(&Confidence::P997);
        roundtrip(&ErrorBound::new(2.5, Confidence::P95));
        roundtrip(&ApproxResult::new(
            100.0,
            ErrorBound::new(3.0, Confidence::P95),
            60,
            100,
        ));
        roundtrip(&IngestCounters {
            ingested: 10,
            dropped_late: 2,
        });
        roundtrip(&ShardIngest {
            shard: 3,
            ingested: 99,
            sampled: 7,
            chunks_routed: 12,
            chunks_recycled: 11,
        });
        roundtrip(&WorkerStatus {
            worker: 2,
            ingest: IngestCounters {
                ingested: 5,
                dropped_late: 1,
            },
            watermark: Some(EventTime::from_secs(9)),
            lag: 4,
            last_checkpoint_pane: Some(-1_000),
            items_since_checkpoint: 17,
            snapshot_bytes: 2_048,
            health: WorkerHealth::Suspect,
            respawns: 1,
        });
        roundtrip(&String::from("aggregated"));
        roundtrip(&String::new());
        let sample: StratifiedSample<f64> = [
            StratumSample::new(StratumId(0), vec![1.0, 2.0], 10, 4),
            StratumSample::new(StratumId(3), vec![-0.5], 1, 4),
        ]
        .into_iter()
        .collect();
        roundtrip(&sample);
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let sample: StratifiedSample<f64> =
            [StratumSample::new(StratumId(1), vec![1.0, 2.0, 3.0], 9, 3)]
                .into_iter()
                .collect();
        let bytes = sample.to_wire_bytes();
        for cut in 0..bytes.len() {
            let err = StratifiedSample::<f64>::from_wire_bytes(&bytes[..cut]);
            assert!(matches!(err, Err(SaError::Wire(_))), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u64.to_wire_bytes();
        bytes.push(0);
        assert!(matches!(
            u64::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_never_allocates() {
        // A Vec<f64> claiming u64::MAX - 1 elements in a 10-byte input.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, u64::MAX - 1);
        let err = Vec::<f64>::from_wire_bytes(&bytes);
        assert!(matches!(err, Err(SaError::Wire(_))));
    }

    #[test]
    fn varint_overflow_and_nonminimal_rejected() {
        // 11 continuation bytes: overflows 64 bits.
        let overlong = [0xFFu8; 11];
        assert!(matches!(
            WireReader::new(&overlong).read_varint(),
            Err(SaError::Wire(_))
        ));
        // 0x80 0x00 is a non-minimal encoding of 0.
        assert!(matches!(
            WireReader::new(&[0x80, 0x00]).read_varint(),
            Err(SaError::Wire(_))
        ));
    }

    #[test]
    fn invalid_invariants_rejected() {
        // Window with end <= start.
        let mut bytes = Vec::new();
        EventTime::from_millis(10).encode(&mut bytes);
        EventTime::from_millis(10).encode(&mut bytes);
        assert!(matches!(
            Window::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
        // WindowSpec with slide > size.
        let mut bytes = Vec::new();
        put_zigzag(&mut bytes, 5);
        put_zigzag(&mut bytes, 10);
        assert!(matches!(
            WindowSpec::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
        // StratumSample claiming more items than population.
        let mut bytes = Vec::new();
        StratumId(0).encode(&mut bytes);
        put_varint(&mut bytes, 1); // population 1
        2usize.encode(&mut bytes); // capacity
        vec![1.0f64, 2.0].encode(&mut bytes); // 2 items
        assert!(matches!(
            StratumSample::<f64>::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
        // ErrorBound with a NaN margin.
        let mut bytes = Vec::new();
        f64::NAN.encode(&mut bytes);
        Confidence::P95.encode(&mut bytes);
        assert!(matches!(
            ErrorBound::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
        // Unknown confidence tag.
        assert!(matches!(
            Confidence::from_wire_bytes(&[9]),
            Err(SaError::Wire(_))
        ));
        // A string whose bytes are not valid UTF-8.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 2);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            String::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
        // Strata out of canonical order.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 2);
        StratumSample::new(StratumId(5), vec![1.0], 1, 1).encode(&mut bytes);
        StratumSample::new(StratumId(2), vec![1.0], 1, 1).encode(&mut bytes);
        assert!(matches!(
            StratifiedSample::<f64>::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }

    proptest! {
        /// Unsigned varints round-trip at every magnitude.
        #[test]
        fn varint_roundtrips(v in any::<u64>()) {
            let mut bytes = Vec::new();
            put_varint(&mut bytes, v);
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(r.read_varint().unwrap(), v);
            prop_assert_eq!(r.remaining(), 0);
        }

        /// Zigzag varints round-trip for both signs.
        #[test]
        fn zigzag_roundtrips(v in any::<i64>()) {
            let mut bytes = Vec::new();
            put_zigzag(&mut bytes, v);
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(r.read_zigzag().unwrap(), v);
        }

        /// f64 round-trips preserve the exact bit pattern.
        #[test]
        fn f64_roundtrips_bit_exact(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            let back = f64::from_wire_bytes(&v.to_wire_bytes()).unwrap();
            prop_assert_eq!(back.to_bits(), bits);
        }

        /// Arbitrary stratified samples round-trip exactly, and random
        /// mutilation of the payload never panics the decoder.
        #[test]
        fn stratified_sample_roundtrips(
            pops in proptest::collection::vec(0u64..50, 0..6),
            cap in 1usize..8,
            seed in any::<u64>(),
        ) {
            let mut sample: StratifiedSample<f64> = StratifiedSample::new();
            for (i, &pop) in pops.iter().enumerate() {
                let n = (pop as usize).min(cap);
                let items: Vec<f64> = (0..n).map(|k| (seed ^ k as u64) as f64).collect();
                sample.push(StratumSample::new(StratumId(i as u32), items, pop, cap));
            }
            let bytes = sample.to_wire_bytes();
            let back = StratifiedSample::<f64>::from_wire_bytes(&bytes).unwrap();
            prop_assert_eq!(back, sample);
            // Truncate at a pseudo-random point: must error, not panic.
            if !bytes.is_empty() {
                let cut = (seed as usize) % bytes.len();
                prop_assert!(StratifiedSample::<f64>::from_wire_bytes(&bytes[..cut]).is_err());
            }
        }
    }
}
