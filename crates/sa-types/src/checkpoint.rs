//! Bounded-error checkpoint types: snapshots of a session's mergeable
//! state and the policy that decides when to take them.
//!
//! Following AF-Stream ("On the Performance and Convergence of Distributed
//! Stream Processing via Approximate Fault Tolerance"), StreamApprox
//! checkpoints are *approximate*: a crash may lose the items ingested
//! since the last snapshot, and the [`CheckpointPolicy`] bounds how large
//! that exposure is allowed to grow. What makes the scheme cheap is the
//! paper's core observation applied here: everything a session needs to
//! resume — per-stratum reservoirs, SCaSRS/Welford statistics, the pane
//! cursor, the watermark, ingest counters — is mergeable state whose size
//! is O(sampling budget), not O(stream).
//!
//! # Snapshot format versioning rules
//!
//! A [`SessionSnapshot`] serializes through the workspace wire codec
//! ([`WireEncode`]/[`WireDecode`](crate::WireDecode)) and is framed by
//! `sa_net::snapshot`, which prepends a magic + format-version header.
//! Inside the frame, values are tag-free, so evolution follows the frame
//! version:
//!
//! * **Additive change** (new trailing field, new engine name): bump the
//!   snapshot frame version in `sa-net`; decoders may accept older
//!   versions by filling defaults.
//! * **Breaking change** (field reordered, meaning changed): bump the
//!   version and *reject* older snapshots — a restored session must never
//!   silently misread state, because the whole point is bit-identical
//!   resumption.
//! * The opaque [`EngineSnapshot::state`] payload is owned by the engine
//!   named in [`EngineSnapshot::engine`]; an engine must refuse a snapshot
//!   carrying another engine's name rather than guess at the layout.

use crate::error::SaError;
use crate::item::EventTime;
use crate::session::IngestCounters;
use crate::wire::{put_varint, WireDecode, WireEncode, WireReader};

/// When a session should take its next checkpoint: a pane-interval cadence
/// plus a hard bound on unsnapshotted items.
///
/// The two knobs trade snapshot cost against crash exposure. `every_panes`
/// is the steady-state cadence — snapshots land on pane-close boundaries,
/// where engine state is quiescent and a restore is bit-identical to an
/// uninterrupted run. `max_unsnapshotted` is the error budget: if a burst
/// pushes more than this many items between pane boundaries, the session
/// reports the checkpoint as due immediately, bounding how much sampled
/// mass (and therefore how much estimate error) a crash can cost.
///
/// # Example
///
/// ```
/// use sa_types::CheckpointPolicy;
///
/// let policy = CheckpointPolicy::every_panes(4).with_max_unsnapshotted(10_000);
/// assert!(!policy.due(3, 500));
/// assert!(policy.due(4, 500)); // cadence reached
/// assert!(policy.due(1, 10_000)); // error budget exhausted
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint whenever this many panes have closed since the last one.
    pub every_panes: u32,
    /// Checkpoint whenever this many items have been accepted since the
    /// last one, regardless of pane cadence. `u64::MAX` disables the
    /// budget.
    pub max_unsnapshotted: u64,
}

impl CheckpointPolicy {
    /// A cadence-only policy: checkpoint every `n` closed panes
    /// (`n` is clamped to at least 1), with no item budget.
    pub fn every_panes(n: u32) -> Self {
        CheckpointPolicy {
            every_panes: n.max(1),
            max_unsnapshotted: u64::MAX,
        }
    }

    /// Adds an unsnapshotted-items budget: the checkpoint becomes due as
    /// soon as `max` items have been accepted since the last one, even
    /// mid-pane.
    pub fn with_max_unsnapshotted(mut self, max: u64) -> Self {
        self.max_unsnapshotted = max;
        self
    }

    /// Whether a checkpoint is due given `panes_since` closed panes and
    /// `items_since` accepted items since the last checkpoint.
    pub fn due(&self, panes_since: u32, items_since: u64) -> bool {
        panes_since >= self.every_panes || items_since >= self.max_unsnapshotted
    }
}

impl Default for CheckpointPolicy {
    /// Checkpoint at every pane close, with no item budget.
    fn default() -> Self {
        CheckpointPolicy::every_panes(1)
    }
}

/// A versioned snapshot of one engine's mergeable state.
///
/// The `state` payload is opaque at this layer: each engine serializes its
/// own reservoirs, statistics, and cursors through the workspace wire
/// codec, and only the engine named in `engine` knows the layout (the
/// `streamapprox::checkpoint` module docs hold the versioning rules). Its
/// size is O(sampling
/// budget) — independent of how many items the stream has carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// The engine that produced this snapshot (e.g. `"batched"`); a
    /// restore into a different engine is a [`SaError::Checkpoint`] error.
    pub engine: String,
    /// The pane start (ms) the snapshot covers through: every pane before
    /// this one is fully merged into the state. `None` if no pane has
    /// opened yet.
    pub pane: Option<i64>,
    /// The engine's serialized state, opaque to everything but the
    /// producing engine.
    pub state: Vec<u8>,
}

impl WireEncode for EngineSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.engine.encode(out);
        self.pane.encode(out);
        put_varint(out, self.state.len() as u64);
        out.extend_from_slice(&self.state);
    }
}

impl WireDecode for EngineSnapshot {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let engine = String::decode(r)?;
        let pane = Option::<i64>::decode(r)?;
        let len = r.read_len()?;
        let state = r.read_bytes(len)?.to_vec();
        Ok(EngineSnapshot {
            engine,
            pane,
            state,
        })
    }
}

/// Everything a crashed session needs to resume within its error bounds:
/// the engine snapshot plus the session-level bookkeeping around it.
///
/// `replay` records the `sa-aggregator` consumer offsets (partition,
/// offset) at snapshot time; a restored session's `ingest_consumer` seeks
/// these so the already-counted prefix of the log is never double-counted
/// — replay resumes exactly where the snapshot's counters left off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The engine state this session snapshot wraps.
    pub engine: EngineSnapshot,
    /// The session watermark at snapshot time.
    pub watermark: Option<EventTime>,
    /// Run-wide ingest accounting at snapshot time.
    pub ingest: IngestCounters,
    /// Items accepted through `push`/`push_batch` at snapshot time.
    pub items_pushed: u64,
    /// Windows the caller had drained through `poll_windows` at snapshot
    /// time.
    pub windows_completed: u64,
    /// Per-partition replay offsets of the session's log consumer at
    /// snapshot time; empty if the session never consumed from a log.
    pub replay: Vec<(usize, u64)>,
}

impl WireEncode for SessionSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.engine.encode(out);
        self.watermark.encode(out);
        self.ingest.encode(out);
        put_varint(out, self.items_pushed);
        put_varint(out, self.windows_completed);
        self.replay.encode(out);
    }
}

impl WireDecode for SessionSnapshot {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        Ok(SessionSnapshot {
            engine: EngineSnapshot::decode(r)?,
            watermark: Option::<EventTime>::decode(r)?,
            ingest: IngestCounters::decode(r)?,
            items_pushed: r.read_varint()?,
            windows_completed: r.read_varint()?,
            replay: Vec::<(usize, u64)>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SessionSnapshot {
        SessionSnapshot {
            engine: EngineSnapshot {
                engine: "sharded".to_string(),
                pane: Some(-5_000),
                state: vec![0xAB, 0x00, 0xFF, 0x01],
            },
            watermark: Some(EventTime::from_millis(4_321)),
            ingest: IngestCounters {
                ingested: 999,
                dropped_late: 3,
            },
            items_pushed: 999,
            windows_completed: 2,
            replay: vec![(0, 120), (1, 98)],
        }
    }

    #[test]
    fn policy_due_on_cadence_or_budget() {
        let p = CheckpointPolicy::every_panes(3).with_max_unsnapshotted(100);
        assert!(!p.due(0, 0));
        assert!(!p.due(2, 99));
        assert!(p.due(3, 0));
        assert!(p.due(0, 100));
        // Cadence clamps to at least one pane.
        assert_eq!(CheckpointPolicy::every_panes(0).every_panes, 1);
        // The default has no item budget.
        assert!(!CheckpointPolicy::default().due(0, u64::MAX - 1));
        assert!(CheckpointPolicy::default().due(1, 0));
    }

    #[test]
    fn snapshots_roundtrip() {
        let snap = sample_snapshot();
        let bytes = snap.to_wire_bytes();
        let back = SessionSnapshot::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // An empty-state, pre-first-pane snapshot also round-trips.
        let empty = SessionSnapshot {
            engine: EngineSnapshot {
                engine: "aggregated".to_string(),
                pane: None,
                state: Vec::new(),
            },
            watermark: None,
            ingest: IngestCounters::default(),
            items_pushed: 0,
            windows_completed: 0,
            replay: Vec::new(),
        };
        let back = SessionSnapshot::from_wire_bytes(&empty.to_wire_bytes()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn truncated_snapshots_error_never_panic() {
        let bytes = sample_snapshot().to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SessionSnapshot::from_wire_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn hostile_state_length_rejected() {
        // An EngineSnapshot whose state length prefix exceeds the input.
        let mut bytes = Vec::new();
        "batched".to_string().encode(&mut bytes);
        Option::<i64>::None.encode(&mut bytes);
        put_varint(&mut bytes, u64::MAX - 1);
        assert!(matches!(
            EngineSnapshot::from_wire_bytes(&bytes),
            Err(SaError::Wire(_))
        ));
    }
}
