//! Approximate results and their error bounds.

use crate::budget::Confidence;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `± error` part of an approximate answer.
///
/// The bound is an absolute margin at a given confidence: the true value lies
/// within `value ± margin` with the stated probability, per the 68-95-99.7
/// rule the paper applies to the estimated variance (§3.3).
///
/// # Example
///
/// ```
/// use sa_types::{ErrorBound, Confidence};
/// let b = ErrorBound::new(2.5, Confidence::P95);
/// assert_eq!(b.margin(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBound {
    margin: f64,
    confidence: Confidence,
}

impl ErrorBound {
    /// Creates an error bound with the given absolute margin.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative or NaN.
    pub fn new(margin: f64, confidence: Confidence) -> Self {
        assert!(
            margin >= 0.0 && margin.is_finite(),
            "error margin must be a non-negative finite number"
        );
        ErrorBound { margin, confidence }
    }

    /// An exact answer: zero margin (used when a window was fully processed,
    /// e.g. under native execution or a 100% sampling fraction).
    pub fn exact() -> Self {
        ErrorBound {
            margin: 0.0,
            confidence: Confidence::P997,
        }
    }

    /// Absolute half-width of the confidence interval.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Confidence level at which the margin holds.
    #[inline]
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }
}

impl fmt::Display for ErrorBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "±{:.4} @ {}", self.margin, self.confidence)
    }
}

/// An approximate query result in the paper's `output ± error bound` form
/// (§3.1), plus the sample/population bookkeeping needed to judge it.
///
/// # Example
///
/// ```
/// use sa_types::{ApproxResult, ErrorBound, Confidence};
/// let r = ApproxResult::new(100.0, ErrorBound::new(3.0, Confidence::P95), 60, 100);
/// assert_eq!(r.value, 100.0);
/// assert!(r.interval().0 <= r.value && r.value <= r.interval().1);
/// assert!((r.sampling_fraction() - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproxResult {
    /// The estimated value of the query.
    pub value: f64,
    /// The error bound around `value`.
    pub bound: ErrorBound,
    /// Number of items actually aggregated (across all strata).
    pub sample_size: u64,
    /// Number of items that arrived in the window (across all strata).
    pub population_size: u64,
}

impl ApproxResult {
    /// Creates an approximate result.
    pub fn new(value: f64, bound: ErrorBound, sample_size: u64, population_size: u64) -> Self {
        ApproxResult {
            value,
            bound,
            sample_size,
            population_size,
        }
    }

    /// The confidence interval `(low, high)` implied by the bound.
    #[inline]
    pub fn interval(&self) -> (f64, f64) {
        (
            self.value - self.bound.margin(),
            self.value + self.bound.margin(),
        )
    }

    /// Fraction of the window's items that contributed to the answer.
    /// Returns 1.0 for an empty window (nothing was left out).
    #[inline]
    pub fn sampling_fraction(&self) -> f64 {
        if self.population_size == 0 {
            1.0
        } else {
            self.sample_size as f64 / self.population_size as f64
        }
    }

    /// Relative half-width of the confidence interval (margin / |value|);
    /// `f64::INFINITY` when the value is zero but the margin is not.
    #[inline]
    pub fn relative_error(&self) -> f64 {
        if self.value == 0.0 {
            if self.bound.margin() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.bound.margin() / self.value.abs()
        }
    }
}

impl fmt::Display for ApproxResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} {} (n={}/{})",
            self.value, self.bound, self.sample_size, self.population_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_is_symmetric() {
        let r = ApproxResult::new(10.0, ErrorBound::new(2.0, Confidence::P68), 5, 10);
        assert_eq!(r.interval(), (8.0, 12.0));
    }

    #[test]
    fn exact_bound_has_zero_margin() {
        let b = ErrorBound::exact();
        assert_eq!(b.margin(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative finite")]
    fn negative_margin_rejected() {
        let _ = ErrorBound::new(-1.0, Confidence::P95);
    }

    #[test]
    #[should_panic(expected = "non-negative finite")]
    fn nan_margin_rejected() {
        let _ = ErrorBound::new(f64::NAN, Confidence::P95);
    }

    #[test]
    fn sampling_fraction_handles_empty_window() {
        let r = ApproxResult::new(0.0, ErrorBound::exact(), 0, 0);
        assert_eq!(r.sampling_fraction(), 1.0);
    }

    #[test]
    fn relative_error_cases() {
        let r = ApproxResult::new(50.0, ErrorBound::new(5.0, Confidence::P95), 1, 1);
        assert!((r.relative_error() - 0.1).abs() < 1e-12);
        let zero_exact = ApproxResult::new(0.0, ErrorBound::exact(), 1, 1);
        assert_eq!(zero_exact.relative_error(), 0.0);
        let zero_loose = ApproxResult::new(0.0, ErrorBound::new(1.0, Confidence::P95), 1, 1);
        assert!(zero_loose.relative_error().is_infinite());
    }

    #[test]
    fn display_mentions_everything() {
        let r = ApproxResult::new(1.0, ErrorBound::new(0.5, Confidence::P95), 3, 4);
        let s = r.to_string();
        assert!(s.contains("1.0000"), "{s}");
        assert!(s.contains("±0.5000"), "{s}");
        assert!(s.contains("n=3/4"), "{s}");
    }
}
