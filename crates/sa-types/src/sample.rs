//! Weighted stratified samples — the common currency between sampling
//! algorithms and error estimation.
//!
//! Every sampler in this workspace (OASRS, Spark-style STS, …) reduces a time
//! interval's worth of input to a [`StratifiedSample`]: per stratum, the
//! selected items `Y_i`, the observed population counter `C_i`, and the
//! reservoir capacity `N_i`. The stratum weight of Equation 1 in the paper,
//!
//! ```text
//! W_i = C_i / N_i   if C_i > N_i
//! W_i = 1           if C_i <= N_i
//! ```
//!
//! falls out of those counters, and the estimators in `sa-estimate` consume
//! the same struct to produce `output ± error bound`.

use crate::item::StratumId;
use serde::{Deserialize, Serialize};

/// The sample drawn from a single stratum (sub-stream) during one time
/// interval, together with the bookkeeping needed for weighting (Eq. 1) and
/// variance estimation (Eq. 6/9).
///
/// # Example
///
/// ```
/// use sa_types::{StratumSample, StratumId};
/// // 3-slot reservoir that saw 6 items: every selected item represents 2.
/// let s = StratumSample::new(StratumId(0), vec![1.0, 2.0, 3.0], 6, 3);
/// assert_eq!(s.weight(), 2.0);
/// // A stratum that never filled its reservoir represents itself.
/// let small = StratumSample::new(StratumId(1), vec![5.0], 1, 3);
/// assert_eq!(small.weight(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratumSample<V> {
    /// Which sub-stream this sample came from.
    pub stratum: StratumId,
    /// The `Y_i` selected items.
    pub items: Vec<V>,
    /// `C_i`: how many items arrived from this stratum in the interval.
    pub population: u64,
    /// `N_i`: the reservoir capacity this stratum was given.
    pub capacity: usize,
}

impl<V> StratumSample<V> {
    /// Creates a stratum sample.
    ///
    /// # Panics
    ///
    /// Panics if more items were selected than arrived (`items.len() >
    /// population`), which no correct sampler can produce.
    pub fn new(stratum: StratumId, items: Vec<V>, population: u64, capacity: usize) -> Self {
        assert!(
            items.len() as u64 <= population,
            "sampler selected {} items out of a population of {}",
            items.len(),
            population
        );
        StratumSample {
            stratum,
            items,
            population,
            capacity,
        }
    }

    /// `Y_i`: the number of selected items.
    #[inline]
    pub fn sample_size(&self) -> usize {
        self.items.len()
    }

    /// The stratum weight `W_i` of Equation 1.
    ///
    /// When the realized sample is smaller than the capacity for reasons
    /// other than a small population (e.g. Bernoulli-style samplers whose
    /// size is random), the weight generalizes to the Horvitz–Thompson form
    /// `C_i / Y_i`, which coincides with Equation 1 for reservoir samplers
    /// (where `Y_i = min(C_i, N_i)`). An empty sample from a non-empty
    /// population has weight 0: it cannot represent anything.
    #[inline]
    pub fn weight(&self) -> f64 {
        let yi = self.items.len() as f64;
        let ci = self.population as f64;
        if self.population == 0 || yi == 0.0 {
            if self.population == 0 {
                1.0
            } else {
                0.0
            }
        } else if ci > yi {
            ci / yi
        } else {
            1.0
        }
    }

    /// Maps the sampled items, keeping all counters.
    pub fn map_items<U, F: FnMut(&V) -> U>(&self, mut f: F) -> StratumSample<U> {
        StratumSample {
            stratum: self.stratum,
            items: self.items.iter().map(&mut f).collect(),
            population: self.population,
            capacity: self.capacity,
        }
    }
}

/// A full stratified sample for one time interval: one [`StratumSample`] per
/// sub-stream seen, in stratum order.
///
/// # Example
///
/// ```
/// use sa_types::{StratifiedSample, StratumSample, StratumId};
/// let mut sample = StratifiedSample::new();
/// sample.push(StratumSample::new(StratumId(0), vec![1.0], 4, 1));
/// sample.push(StratumSample::new(StratumId(1), vec![2.0, 3.0], 2, 4));
/// assert_eq!(sample.total_population(), 6);
/// assert_eq!(sample.total_sampled(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StratifiedSample<V> {
    strata: Vec<StratumSample<V>>,
}

impl<V> StratifiedSample<V> {
    /// Creates an empty stratified sample.
    pub fn new() -> Self {
        StratifiedSample { strata: Vec::new() }
    }

    /// Adds a stratum's sample. Strata are kept sorted by [`StratumId`] so
    /// output and estimation are deterministic regardless of arrival order.
    pub fn push(&mut self, s: StratumSample<V>) {
        let pos = self
            .strata
            .binary_search_by_key(&s.stratum, |x| x.stratum)
            .unwrap_or_else(|p| p);
        self.strata.insert(pos, s);
    }

    /// Iterates over the per-stratum samples in stratum order.
    pub fn iter(&self) -> std::slice::Iter<'_, StratumSample<V>> {
        self.strata.iter()
    }

    /// Number of strata represented.
    #[inline]
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Whether no stratum contributed anything.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// Looks up the sample of one stratum.
    pub fn stratum(&self, id: StratumId) -> Option<&StratumSample<V>> {
        self.strata
            .binary_search_by_key(&id, |x| x.stratum)
            .ok()
            .map(|i| &self.strata[i])
    }

    /// Total `ΣC_i` across strata.
    pub fn total_population(&self) -> u64 {
        self.strata.iter().map(|s| s.population).sum()
    }

    /// Total `ΣY_i` across strata.
    pub fn total_sampled(&self) -> u64 {
        self.strata.iter().map(|s| s.items.len() as u64).sum()
    }

    /// Merges another stratified sample drawn from a *disjoint* portion of
    /// the same stream (the paper's distributed execution, §3.2: per-worker
    /// reservoirs of size `N_i/w` whose union forms the stratum sample, with
    /// counters summed).
    pub fn union(&mut self, other: StratifiedSample<V>) {
        for s in other.strata {
            match self.strata.binary_search_by_key(&s.stratum, |x| x.stratum) {
                Ok(i) => {
                    let dst = &mut self.strata[i];
                    dst.items.extend(s.items);
                    dst.population += s.population;
                    dst.capacity += s.capacity;
                }
                Err(p) => self.strata.insert(p, s),
            }
        }
    }

    /// Consumes the sample, returning the per-stratum samples in order.
    pub fn into_strata(self) -> Vec<StratumSample<V>> {
        self.strata
    }
}

impl<V> FromIterator<StratumSample<V>> for StratifiedSample<V> {
    fn from_iter<I: IntoIterator<Item = StratumSample<V>>>(iter: I) -> Self {
        let mut s = StratifiedSample::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl<'a, V> IntoIterator for &'a StratifiedSample<V> {
    type Item = &'a StratumSample<V>;
    type IntoIter = std::slice::Iter<'a, StratumSample<V>>;
    fn into_iter(self) -> Self::IntoIter {
        self.strata.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32, items: Vec<f64>, pop: u64, cap: usize) -> StratumSample<f64> {
        StratumSample::new(StratumId(id), items, pop, cap)
    }

    #[test]
    fn weight_matches_equation_one() {
        // Ci > Ni: weight Ci/Ni (reservoir full: Yi == Ni).
        assert_eq!(s(0, vec![1.0, 2.0, 3.0], 6, 3).weight(), 2.0);
        // Ci <= Ni: weight 1.
        assert_eq!(s(0, vec![1.0, 2.0], 2, 3).weight(), 1.0);
        // Degenerate: empty population.
        assert_eq!(s(0, vec![], 0, 3).weight(), 1.0);
        // Degenerate: population but nothing sampled.
        assert_eq!(s(0, vec![], 5, 3).weight(), 0.0);
    }

    #[test]
    fn weight_generalizes_to_horvitz_thompson() {
        // Bernoulli sampler returned 2 of 10 with capacity 5.
        let sm = s(0, vec![1.0, 2.0], 10, 5);
        assert_eq!(sm.weight(), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of a population")]
    fn oversampled_stratum_rejected() {
        let _ = s(0, vec![1.0, 2.0], 1, 5);
    }

    #[test]
    fn push_keeps_stratum_order() {
        let mut sample = StratifiedSample::new();
        sample.push(s(2, vec![1.0], 1, 1));
        sample.push(s(0, vec![2.0], 1, 1));
        sample.push(s(1, vec![3.0], 1, 1));
        let ids: Vec<u32> = sample.iter().map(|x| x.stratum.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn totals_aggregate_across_strata() {
        let sample: StratifiedSample<f64> = [s(0, vec![1.0], 4, 1), s(1, vec![2.0, 3.0], 2, 4)]
            .into_iter()
            .collect();
        assert_eq!(sample.total_population(), 6);
        assert_eq!(sample.total_sampled(), 3);
        assert_eq!(sample.num_strata(), 2);
        assert!(sample.stratum(StratumId(1)).is_some());
        assert!(sample.stratum(StratumId(9)).is_none());
    }

    #[test]
    fn union_merges_matching_strata_and_inserts_new() {
        let mut a: StratifiedSample<f64> = [s(0, vec![1.0], 5, 2)].into_iter().collect();
        let b: StratifiedSample<f64> = [s(0, vec![2.0], 7, 2), s(3, vec![9.0], 1, 2)]
            .into_iter()
            .collect();
        a.union(b);
        assert_eq!(a.num_strata(), 2);
        let s0 = a.stratum(StratumId(0)).unwrap();
        assert_eq!(s0.items, vec![1.0, 2.0]);
        assert_eq!(s0.population, 12);
        assert_eq!(s0.capacity, 4);
        assert_eq!(a.stratum(StratumId(3)).unwrap().population, 1);
    }

    #[test]
    fn map_items_keeps_counters() {
        let sm = s(0, vec![1.0, 2.0], 10, 5).map_items(|v| v * 10.0);
        assert_eq!(sm.items, vec![10.0, 20.0]);
        assert_eq!(sm.population, 10);
        assert_eq!(sm.capacity, 5);
    }
}
