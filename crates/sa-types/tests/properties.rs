//! Property-based tests for the shared types: window assignment laws and
//! sample bookkeeping.

use proptest::prelude::*;
use sa_types::{EventTime, StratifiedSample, StratumId, StratumSample, WindowSpec};

proptest! {
    /// Every instant after the first full window is covered by exactly
    /// `size / slide` windows when slide divides size.
    #[test]
    fn steady_state_coverage_count(
        slide in 1i64..500,
        factor in 1i64..6,
        t_rel in 0i64..10_000,
    ) {
        let size = slide * factor;
        let spec = WindowSpec::sliding_millis(size, slide);
        // Start measuring after one full window so clamping is over.
        let t = EventTime::from_millis(size + t_rel);
        let count = spec.windows_containing(t).count();
        prop_assert_eq!(count as i64, factor);
    }

    /// All returned windows contain the instant; no window that contains
    /// the instant is missing (cross-check by scanning slide multiples).
    #[test]
    fn windows_containing_is_sound_and_complete(
        size in 1i64..1_000,
        slide_rel in 0.01f64..1.0,
        t in 0i64..20_000,
    ) {
        let slide = ((size as f64 * slide_rel) as i64).max(1);
        let spec = WindowSpec::sliding_millis(size, slide);
        let time = EventTime::from_millis(t);
        let got: Vec<_> = spec.windows_containing(time).collect();
        for w in &got {
            prop_assert!(w.contains(time), "{} !∋ {}", w, time);
            prop_assert_eq!(w.start.as_millis().rem_euclid(slide), 0);
            prop_assert!(w.start.as_millis() >= 0);
        }
        // Completeness: scan candidate starts around t.
        let mut expected = 0usize;
        let mut start = ((t - size) / slide - 2).max(0) * slide;
        while start <= t {
            let w = spec.window_at(EventTime::from_millis(start));
            if w.contains(time) {
                expected += 1;
            }
            start += slide;
        }
        prop_assert_eq!(got.len(), expected);
    }

    /// Union of stratified samples is commutative in effect: counters and
    /// per-stratum sizes agree regardless of union order.
    #[test]
    fn stratified_union_is_order_insensitive(
        a_strata in proptest::collection::vec((0u32..6, 0usize..20, 0u64..100), 0..6),
        b_strata in proptest::collection::vec((0u32..6, 0usize..20, 0u64..100), 0..6),
    ) {
        let build = |spec: &[(u32, usize, u64)]| -> StratifiedSample<u64> {
            let mut s = StratifiedSample::new();
            let mut seen = std::collections::HashSet::new();
            for &(k, y, extra) in spec {
                if !seen.insert(k) {
                    continue; // one entry per stratum per sample
                }
                let items: Vec<u64> = (0..y as u64).collect();
                let population = y as u64 + extra;
                s.push(StratumSample::new(StratumId(k), items, population, y.max(1)));
            }
            s
        };
        let (a1, b1) = (build(&a_strata), build(&b_strata));
        let (a2, b2) = (build(&a_strata), build(&b_strata));
        let mut ab = a1;
        ab.union(b1);
        let mut ba = b2;
        ba.union(a2);
        prop_assert_eq!(ab.total_population(), ba.total_population());
        prop_assert_eq!(ab.total_sampled(), ba.total_sampled());
        prop_assert_eq!(ab.num_strata(), ba.num_strata());
        for s in ab.iter() {
            let other = ba.stratum(s.stratum).expect("stratum in both unions");
            prop_assert_eq!(s.population, other.population);
            prop_assert_eq!(s.sample_size(), other.sample_size());
        }
    }

    /// Weight × sample size reconstructs the population for full
    /// reservoirs (Y = min(C, N)).
    #[test]
    fn weight_reconstructs_population(
        population in 1u64..10_000,
        capacity in 1usize..512,
    ) {
        let y = (population as usize).min(capacity);
        let items: Vec<u64> = (0..y as u64).collect();
        let s = StratumSample::new(StratumId(0), items, population, capacity);
        let reconstructed = s.weight() * s.sample_size() as f64;
        prop_assert!((reconstructed - population as f64).abs() < 1e-9 * population as f64 + 1e-9);
    }
}
