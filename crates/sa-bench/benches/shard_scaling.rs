//! Shard-scaling throughput: the sharded data-parallel engine at
//! N ∈ {1, 2, 4, 8} worker shards over one recorded stream.
//!
//! For each shard count the bench reports ingest throughput (median of
//! `REPS` runs), the mean accuracy loss against the exact baseline, and
//! the per-window confidence-bound containment rate — scaling out must
//! buy throughput on multi-core hosts *without* spending accuracy,
//! because the mergeable-sampler layer preserves inclusion probabilities
//! across shards.
//!
//! Besides the usual table + CSV, the bench emits a machine-readable
//! `results/shard_scaling.json` (host core count, series of per-N
//! measurements) so successive runs can be charted as a trajectory.

use sa_batched::Cluster;
use sa_bench::{emit_json, fmt_kps, fmt_loss, mean_accuracy, Metric, Table};
use sa_types::{StreamItem, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{
    run_batched, BatchedConfig, BatchedSystem, FixedFraction, Query, RunOutput, ShardedConfig,
    StreamApprox,
};

const REPS: usize = 3;
const FRACTION: f64 = 0.2;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn run_sharded(shards: usize, items: &[StreamItem<f64>], query: &Query<f64>) -> RunOutput {
    let first_pane = items
        .iter()
        .take_while(|i| i.time.as_millis() < query.window().slide_millis())
        .count();
    let mut policy = FixedFraction(FRACTION);
    let mut session = StreamApprox::new(query.clone(), &mut policy)
        .sharded(
            ShardedConfig::new(shards)
                .with_seed(0xC0FFEE_u64)
                .with_expected_pane_items(first_pane),
        )
        .start();
    session
        .push_batch(items.iter().copied())
        .expect("recorded stream is in order");
    session.finish()
}

/// Fraction of populated windows whose mean interval contains the exact
/// mean.
fn containment(exact: &RunOutput, approx: &RunOutput) -> f64 {
    let mut contained = 0usize;
    let mut total = 0usize;
    for (e, a) in exact.windows.iter().zip(&approx.windows) {
        if e.sum.population_size == 0 {
            continue;
        }
        total += 1;
        let (lo, hi) = a.mean.interval();
        contained += usize::from(lo <= e.mean.value && e.mean.value <= hi);
    }
    if total == 0 {
        1.0
    } else {
        contained as f64 / total as f64
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // `SA_BENCH_SMOKE=1`: CI-smoke size, and no JSON so scheduled runs
    // cannot clobber recorded results.
    let smoke = std::env::var_os("SA_BENCH_SMOKE").is_some();
    let event_ms = if smoke { 400 } else { 10_000 };
    // 10 s of event time at a high aggregate rate (the fig4 shape).
    let items = Mix::gaussian([48_000.0, 12_000.0, 1_200.0]).generate(event_ms, 41);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1));
    println!(
        "shard_scaling: {} items, fraction {FRACTION}, {cores} host core(s)",
        items.len()
    );
    let exact = run_batched(
        &BatchedConfig::new(Cluster::new(2)),
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        items.clone(),
    );

    let mut table = Table::new(
        "Shard scaling: ingest throughput and accuracy vs shard count",
        &["shards", "K items/s", "loss %", "CI containment"],
    );
    let mut series = Vec::new();
    for shards in SHARD_COUNTS {
        let mut runs: Vec<RunOutput> = (0..REPS)
            .map(|_| run_sharded(shards, &items, &query))
            .collect();
        runs.sort_by(|a, b| {
            a.throughput()
                .partial_cmp(&b.throughput())
                .expect("finite throughputs")
        });
        let median = runs.swap_remove(runs.len() / 2);
        let loss = mean_accuracy(&exact, &median, Metric::Mean);
        let contain = containment(&exact, &median);
        table.row(vec![
            shards.to_string(),
            fmt_kps(median.throughput()),
            fmt_loss(loss),
            format!("{:.2}", contain),
        ]);
        series.push(format!(
            "    {{\"shards\": {shards}, \"throughput_items_per_s\": {:.0}, \
             \"mean_accuracy_loss\": {loss:.6}, \"ci_containment\": {contain:.4}}}",
            median.throughput()
        ));
    }
    table.emit("shard_scaling");
    if smoke {
        println!("shard_scaling: smoke mode, skipping results/shard_scaling.json");
        return;
    }
    emit_json(
        "shard_scaling",
        &format!(
            "{{\n  \"bench\": \"shard_scaling\",\n  \"host_cores\": {cores},\n  \
             \"items\": {},\n  \"fraction\": {FRACTION},\n  \"reps\": {REPS},\n  \
             \"series\": [\n{}\n  ]\n}}\n",
            items.len(),
            series.join(",\n")
        ),
    );
}
