//! Figure 4: the Gaussian microbenchmark (§5.2, §5.3).
//!
//! * (a) throughput vs sampling fraction, all six systems;
//! * (b) accuracy loss vs sampling fraction, four sampled systems;
//! * (c) throughput vs batch interval, the three Spark-style systems.
//!
//! Paper shapes: sampling systems speed up as the fraction falls
//! (1.15–3× over native); STS is the slowest sampled system; stratified
//! systems (SA, STS) lose less accuracy than SRS; smaller batch intervals
//! widen StreamApprox's lead over the in-engine samplers.

use sa_bench::{fmt_kps, fmt_loss, mean_accuracy, measure, Env, Metric, System, Table};
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::{BatchedSystem, FixedFraction, Query};

const REPS: usize = 3;

fn main() {
    let env = Env::host();
    // §5.1 Gaussian mix, 10 s of event time at a high aggregate rate,
    // shipped in the aggregator's wire format.
    let items = Mix::gaussian([32_000.0, 8_000.0, 1_600.0]).generate_lines(10_000, 41);
    let query = Query::new(|line: &String| Mix::parse_line(line))
        .with_window(WindowSpec::sliding_secs(10, 5));
    println!("fig4: {} records over 10s of event time", items.len());

    // ---- Panels (a) + (b): one fraction sweep feeds both. ----
    let exact = measure(&env, System::NativeSpark, 1.0, &query, &items, REPS);
    let native_flink = measure(&env, System::NativeFlink, 1.0, &query, &items, REPS);

    let mut tput = Table::new(
        "Figure 4(a): throughput (K items/s) vs sampling fraction",
        &["fraction", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    let mut acc = Table::new(
        "Figure 4(b): accuracy loss (%) vs sampling fraction",
        &["fraction", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &fraction in &[0.10, 0.20, 0.40, 0.60, 0.80, 0.90] {
        let mut trow = vec![format!("{:.0}%", fraction * 100.0)];
        let mut arow = trow.clone();
        for system in System::SAMPLED {
            let out = measure(&env, system, fraction, &query, &items, REPS);
            trow.push(fmt_kps(out.throughput()));
            arow.push(fmt_loss(mean_accuracy(&exact, &out, Metric::Mean)));
        }
        if fraction < 0.85 {
            tput.row(trow); // the paper's (a) sweeps 10–80%
        }
        acc.row(arow); // (b) sweeps 10–90%
    }
    tput.row(vec![
        "native".into(),
        fmt_kps(native_flink.throughput()),
        fmt_kps(exact.throughput()),
        "-".into(),
        "-".into(),
    ]);
    tput.emit("fig4a");
    acc.emit("fig4b");

    // ---- Panel (c): batch-interval sweep at 60%. ----
    let mut c = Table::new(
        "Figure 4(c): throughput (K items/s) vs batch interval, fraction 60%",
        &["interval", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &interval in &[250i64, 500, 1_000] {
        let mut env_i = env.clone();
        env_i.batched = env_i.batched.with_batch_interval_ms(interval);
        let mut row = vec![format!("{interval}ms")];
        for system in [
            BatchedSystem::StreamApprox,
            BatchedSystem::Srs,
            BatchedSystem::Sts,
        ] {
            // Median of REPS runs on the batched engine directly.
            let mut runs: Vec<f64> = (0..REPS)
                .map(|_| {
                    streamapprox::run_batched(
                        &env_i.batched,
                        system,
                        &query,
                        &mut FixedFraction(0.6),
                        items.clone(),
                    )
                    .throughput()
                })
                .collect();
            runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            row.push(fmt_kps(runs[runs.len() / 2]));
        }
        c.row(row);
    }
    c.emit("fig4c");
}
