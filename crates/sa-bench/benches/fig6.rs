//! Figure 6: scalability, throughput at fixed accuracy, and the Poisson
//! long tail (§5.6, §5.7).
//!
//! * (a) throughput vs worker count (scale-up) and node count (scale-out),
//!   fraction 40%;
//! * (b) throughput at a fixed accuracy loss (0.5% and 1%), skewed
//!   Gaussian stream;
//! * (c) accuracy loss vs fraction on the skewed Poisson stream
//!   (80% / 19.99% / 0.01% with λ = 10⁸ in the tail).
//!
//! Paper shapes: StreamApprox and SRS scale better than STS (whose shuffle
//! synchronizes workers); at equal accuracy StreamApprox out-runs both
//! baselines; on the long-tail Poisson stream SRS's accuracy collapses.
//! Host caveat: this container has 2 physical cores, so scaling curves
//! flatten beyond 2 workers (documented in EXPERIMENTS.md).

use sa_batched::Cluster;
use sa_bench::{
    fmt_kps, fmt_loss, mean_accuracy, measure, throughput_at_accuracy, Env, Metric, System, Table,
};
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::{BatchedConfig, PipelinedConfig, Query};

const REPS: usize = 2;

fn main() {
    let query = Query::new(|line: &String| Mix::parse_line(line))
        .with_window(WindowSpec::sliding_secs(10, 5));

    // ---- Panel (a): scale-up (cores) and scale-out (nodes). ----
    let items = Mix::gaussian([24_000.0, 6_000.0, 1_200.0]).generate_lines(10_000, 61);
    println!("fig6a: {} records", items.len());
    let mut a = Table::new(
        "Figure 6(a): throughput (K items/s), fraction 40% — cores then nodes",
        &["config", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &cores in &[1usize, 2, 4, 8] {
        let env = Env {
            batched: BatchedConfig::new(Cluster::new(cores)),
            pipelined: PipelinedConfig::new().with_sample_workers(cores.min(4)),
        };
        let mut row = vec![format!("{cores} cores")];
        for system in System::SAMPLED {
            let out = measure(&env, system, 0.4, &query, &items, REPS);
            row.push(fmt_kps(out.throughput()));
        }
        a.row(row);
    }
    for &nodes in &[1usize, 2, 3, 4] {
        let env = Env {
            batched: BatchedConfig::new(Cluster::with_topology(nodes, 2)),
            pipelined: PipelinedConfig::new().with_sample_workers(2),
        };
        let mut row = vec![format!("{nodes} nodes")];
        for system in System::SAMPLED {
            let out = measure(&env, system, 0.4, &query, &items, REPS);
            row.push(fmt_kps(out.throughput()));
        }
        a.row(row);
    }
    a.emit("fig6a");

    // ---- Panel (b): throughput at fixed accuracy loss. ----
    let env = Env::host();
    let skewed = Mix::gaussian_skewed(30_000.0).generate_lines(10_000, 62);
    let exact = measure(&env, System::NativeSpark, 1.0, &query, &skewed, 1);
    let mut b = Table::new(
        "Figure 6(b): throughput (K items/s) at fixed accuracy loss",
        &["loss", "Spark-SRS", "Spark-STS", "Spark-SA", "Flink-SA"],
    );
    for &target in &[0.005f64, 0.01] {
        let mut row = vec![format!("{:.1}%", target * 100.0)];
        for system in [
            System::SparkSrs,
            System::SparkSts,
            System::SparkStreamApprox,
            System::FlinkStreamApprox,
        ] {
            let (tput, fraction) =
                throughput_at_accuracy(&env, system, target, Metric::Mean, &query, &skewed, &exact);
            row.push(format!("{} (f={:.2})", fmt_kps(tput), fraction));
        }
        b.row(row);
    }
    b.emit("fig6b");

    // ---- Panel (c): Poisson long tail. ----
    let poisson = Mix::poisson_skewed(20_000.0).generate_lines(20_000, 63);
    println!("fig6c: {} records", poisson.len());
    let exact_p = measure(&env, System::NativeSpark, 1.0, &query, &poisson, 1);
    let mut c = Table::new(
        "Figure 6(c): accuracy loss (%) vs fraction, skewed Poisson stream",
        &["fraction", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &fraction in &[0.10, 0.20, 0.40, 0.60, 0.80, 0.90] {
        let mut row = vec![format!("{:.0}%", fraction * 100.0)];
        for system in System::SAMPLED {
            let out = measure(&env, system, fraction, &query, &poisson, REPS);
            row.push(fmt_loss(mean_accuracy(&exact_p, &out, Metric::Mean)));
        }
        c.row(row);
    }
    c.emit("fig6c");
}
