//! Figure 5: varying arrival rates and window sizes (§5.4, §5.5).
//!
//! * (a) accuracy loss vs sub-stream arrival rates `A:B:C`
//!   (8K:2K:100 / 3K:3K:3K / 100:2K:8K), fraction 60%;
//! * (b) throughput vs window size (10–40 s);
//! * (c) accuracy loss vs window size.
//!
//! Paper shapes: SRS degrades sharply when the significant sub-stream C is
//! rare (100 items/s) and recovers as C's rate grows; window size affects
//! neither throughput nor accuracy much.

use sa_bench::{fmt_kps, fmt_loss, mean_accuracy, measure, Env, Metric, System, Table};
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::Query;

const REPS: usize = 3;

fn main() {
    let env = Env::host();
    let query = Query::new(|line: &String| Mix::parse_line(line))
        .with_window(WindowSpec::sliding_secs(10, 5));

    // ---- Panel (a): arrival-rate settings. ----
    let mut a = Table::new(
        "Figure 5(a): accuracy loss (%) vs arrival rates A:B:C, fraction 60%",
        &["rates", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for (label, rates) in [
        ("8K:2K:100", [8_000.0, 2_000.0, 100.0]),
        ("3K:3K:3K", [3_000.0, 3_000.0, 3_000.0]),
        ("100:2K:8K", [100.0, 2_000.0, 8_000.0]),
    ] {
        let items = Mix::gaussian(rates).generate_lines(20_000, 51);
        let exact = measure(&env, System::NativeSpark, 1.0, &query, &items, 1);
        let mut row = vec![label.to_string()];
        for system in System::SAMPLED {
            let out = measure(&env, system, 0.6, &query, &items, REPS);
            row.push(fmt_loss(mean_accuracy(&exact, &out, Metric::Mean)));
        }
        a.row(row);
    }
    a.emit("fig5a");

    // ---- Panels (b) + (c): window-size sweep on one stream. ----
    let items = Mix::gaussian([8_000.0, 2_000.0, 100.0]).generate_lines(50_000, 52);
    println!("fig5(b,c): {} records over 50s of event time", items.len());
    let mut b = Table::new(
        "Figure 5(b): throughput (K items/s) vs window size, fraction 60%",
        &["window", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    let mut c = Table::new(
        "Figure 5(c): accuracy loss (%) vs window size, fraction 60%",
        &["window", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &size_s in &[10i64, 20, 30, 40] {
        let q = Query::new(|line: &String| Mix::parse_line(line))
            .with_window(WindowSpec::sliding_secs(size_s, 5));
        let exact = measure(&env, System::NativeSpark, 1.0, &q, &items, 1);
        let mut brow = vec![format!("{size_s}s")];
        let mut crow = brow.clone();
        for system in System::SAMPLED {
            let out = measure(&env, system, 0.6, &q, &items, REPS.min(2));
            brow.push(fmt_kps(out.throughput()));
            crow.push(fmt_loss(mean_accuracy(&exact, &out, Metric::Mean)));
        }
        b.row(brow);
        c.row(crow);
    }
    b.emit("fig5b");
    c.emit("fig5c");
}
