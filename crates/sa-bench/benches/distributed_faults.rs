//! Fault recovery over loopback: kill one of two workers at pane
//! fraction p and measure what the failure costs under each recovery
//! mode.
//!
//! Three modes per kill point:
//!
//! * `healthy` — nobody dies; the baseline the others are charged
//!   against.
//! * `kill` — the worker dies for good; the dead shard retires after
//!   the fault policy's backoff and every later pane merges degraded
//!   with widened intervals. The interesting outputs are the degraded
//!   window fraction, the accounted lost mass, and how much wall-clock
//!   the retirement windows add.
//! * `rejoin` — the worker checkpoints mid-stream, dies, and a
//!   replacement adopts the shard via the coordinator handoff and
//!   replays from the checkpoint; accuracy should match `healthy`
//!   exactly, the cost being only the replay and detection latency.
//!
//! Besides the usual table + CSV, emits `results/distributed_faults.json`
//! with every series for charting.

use sa_batched::Cluster;
use sa_bench::{emit_json, fmt_kps, fmt_loss, mean_accuracy, Metric, Table};
use sa_types::{FaultPolicy, StreamItem, WindowSpec};
use sa_workloads::Mix;
use std::thread;
use std::time::Duration;
use streamapprox::{
    connect_worker, rejoin_worker, run_batched, ApproxSession, BatchedConfig, BatchedSystem,
    DistributedConfig, FixedFraction, Query, RecordCodec, RunOutput, StreamApprox,
};

const WORKERS: usize = 2;
const FRACTION: f64 = 0.2;
const KILL_POINTS: [f64; 3] = [0.25, 0.5, 0.75];

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Healthy,
    Kill,
    Rejoin,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Healthy => "healthy",
            Mode::Kill => "kill",
            Mode::Rejoin => "rejoin",
        }
    }
}

fn first_pane(items: &[StreamItem<f64>], query: &Query<f64>) -> usize {
    items
        .iter()
        .take_while(|i| i.time.as_millis() < query.window().slide_millis())
        .count()
}

/// Short detection windows so `kill` settles in bench time; `rejoin`
/// gets patient pane/backoff clocks so the replacement refills the dead
/// shard's panes instead of losing them to a force-merge.
fn fault_for(mode: Mode) -> FaultPolicy {
    let fast = FaultPolicy::default()
        .with_heartbeat_interval(Duration::from_millis(30))
        .with_miss_budget(4)
        .with_pane_timeout(Duration::from_millis(500))
        .with_backoff(Duration::from_millis(200));
    match mode {
        Mode::Rejoin => fast
            .with_pane_timeout(Duration::from_secs(10))
            .with_backoff(Duration::from_secs(10)),
        _ => fast,
    }
}

fn run_faulted(
    mode: Mode,
    kill_at: f64,
    items: &[StreamItem<f64>],
    query: &Query<f64>,
) -> RunOutput {
    // Round-robin partitioning preserves event-time order per worker.
    let mut shards: Vec<Vec<StreamItem<f64>>> = vec![Vec::new(); WORKERS];
    for (i, item) in items.iter().enumerate() {
        shards[i % WORKERS].push(*item);
    }
    let mut policy = FixedFraction(FRACTION);
    let coordinator = StreamApprox::new(query.clone(), &mut policy)
        .distributed(
            DistributedConfig::new(WORKERS as u32)
                .with_seed(0xFA17_u64.into())
                .with_expected_pane_items(first_pane(items, query))
                .with_timeout(Duration::from_secs(60))
                .with_fault_policy(fault_for(mode)),
        )
        .expect("bind a loopback coordinator");
    let addr = coordinator.addr();

    let victim_shard = shards.pop().expect("two shards");
    let good_shard = shards.pop().expect("two shards");
    let good = thread::spawn(move || {
        let engine = connect_worker(addr, 0, false, |v: &f64| *v).expect("worker joins");
        let mut session = ApproxSession::from_engine(Box::new(engine));
        session.push_batch(good_shard).expect("in order");
        session.finish()
    });
    // One pane's worth of one shard's items: the checkpoint exposure the
    // rejoin mode replays.
    let pane_exposure = (first_pane(items, query) / WORKERS).max(1);
    let victim = thread::spawn(move || {
        let kill_idx = (victim_shard.len() as f64 * kill_at) as usize;
        match mode {
            Mode::Healthy => {
                let engine = connect_worker(addr, 1, false, |v: &f64| *v).expect("worker joins");
                let mut session = ApproxSession::from_engine(Box::new(engine));
                session.push_batch(victim_shard).expect("in order");
                let _ = session.finish();
            }
            Mode::Kill => {
                let engine = connect_worker(addr, 1, false, |v: &f64| *v).expect("worker joins");
                let mut session = ApproxSession::from_engine(Box::new(engine));
                session
                    .push_batch(victim_shard[..kill_idx].to_vec())
                    .expect("in order");
                drop(session); // crash: no shutdown, shard never replaced
            }
            Mode::Rejoin => {
                // Checkpoint one pane's worth of items before the kill:
                // the exposure the replacement replays.
                let ckpt_idx = kill_idx.saturating_sub(pane_exposure).max(1);
                let engine = connect_worker(addr, 1, false, |v: &f64| *v)
                    .expect("worker joins")
                    .checkpointable(RecordCodec::new());
                let mut session = ApproxSession::from_engine(Box::new(engine));
                session
                    .push_batch(victim_shard[..ckpt_idx].to_vec())
                    .expect("in order");
                let _ = session.checkpoint().expect("checkpointable worker");
                session
                    .push_batch(victim_shard[ckpt_idx..kill_idx].to_vec())
                    .expect("in order");
                drop(session); // crash after the checkpoint

                let (engine, handoff) =
                    rejoin_worker(addr, false, |v: &f64| *v).expect("a dead shard to adopt");
                let handoff = handoff.expect("the victim published its checkpoint");
                let mut session = ApproxSession::resume_from_engine(Box::new(engine), &handoff)
                    .expect("restores");
                session
                    .push_batch(victim_shard[ckpt_idx..].to_vec())
                    .expect("replay from the checkpoint boundary");
                let _ = session.finish();
            }
        }
    });

    let out = coordinator.finish().expect("fault runs settle, not error");
    victim.join().expect("victim thread");
    good.join().expect("good worker thread");
    out
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // `SA_BENCH_SMOKE=1`: CI-smoke size, and no JSON so scheduled runs
    // cannot clobber recorded results.
    let smoke = std::env::var_os("SA_BENCH_SMOKE").is_some();
    let event_ms = if smoke { 3_000 } else { 10_000 };
    let items = Mix::gaussian([48_000.0, 12_000.0, 1_200.0]).generate(event_ms, 43);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1));
    let kill_points: &[f64] = if smoke {
        &KILL_POINTS[1..2]
    } else {
        &KILL_POINTS
    };
    println!(
        "distributed_faults: {} items, fraction {FRACTION}, {cores} host core(s)",
        items.len()
    );
    let exact = run_batched(
        &BatchedConfig::new(Cluster::new(2)),
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        items.clone(),
    );

    let mut table = Table::new(
        "Fault recovery: kill one of two workers at pane fraction p",
        &[
            "mode",
            "kill at",
            "it/s",
            "degraded",
            "lost items",
            "loss %",
        ],
    );
    let mut series = Vec::new();
    let mut measure = |mode: Mode, p: f64| {
        let out = run_faulted(mode, p, &items, &query);
        let degraded = out.windows.iter().filter(|w| w.degraded).count();
        let lost: u64 = out.windows.iter().map(|w| w.lost_items).sum();
        match mode {
            Mode::Healthy | Mode::Rejoin => assert_eq!(
                degraded,
                0,
                "{} at p={p}: no window may degrade",
                mode.label()
            ),
            Mode::Kill => assert!(
                degraded > 0,
                "kill at p={p}: the lost shard must stamp windows"
            ),
        }
        assert_eq!(
            out.windows.len(),
            exact.windows.len(),
            "{} at p={p}: the watermark must finalize every window",
            mode.label()
        );
        let loss = mean_accuracy(&exact, &out, Metric::Mean);
        table.row(vec![
            mode.label().to_string(),
            if mode == Mode::Healthy {
                "-".to_string()
            } else {
                format!("{p:.2}")
            },
            fmt_kps(out.throughput()),
            format!("{degraded}/{}", out.windows.len()),
            lost.to_string(),
            fmt_loss(loss),
        ]);
        series.push(format!(
            "    {{\"mode\": \"{}\", \"kill_at\": {p}, \"items_per_s\": {:.0}, \
             \"degraded_windows\": {degraded}, \"windows\": {}, \"lost_items\": {lost}, \
             \"mean_accuracy_loss\": {loss:.6}}}",
            mode.label(),
            out.throughput(),
            out.windows.len()
        ));
    };
    // Healthy is kill-point independent; measure it once as the baseline.
    measure(Mode::Healthy, 1.0);
    for &p in kill_points {
        measure(Mode::Kill, p);
        measure(Mode::Rejoin, p);
    }
    table.emit("distributed_faults");
    if smoke {
        println!("distributed_faults: smoke mode, skipping results/distributed_faults.json");
        return;
    }
    emit_json(
        "distributed_faults",
        &format!(
            "{{\n  \"bench\": \"distributed_faults\",\n  \"host_cores\": {cores},\n  \
             \"items\": {},\n  \"fraction\": {FRACTION},\n  \"workers\": {WORKERS},\n  \
             \"series\": [\n{}\n  ]\n}}\n",
            items.len(),
            series.join(",\n")
        ),
    );
}
