//! Checkpoint overhead: what bounded-error fault tolerance costs on the
//! ingest hot path. The AF-Stream-style pitch is that snapshots are
//! O(sampling budget) — reservoirs, per-stratum statistics, counters —
//! so sealing one should be microseconds, and a realistic cadence should
//! shave only a few percent off session throughput.
//!
//! The bench runs the same consumer-path session three ways — no
//! checkpoints, a checkpoint every 8 panes, a checkpoint every pane — and
//! reports median throughput, the number of snapshots taken, and the
//! sealed snapshot size. Per config it reports the median of `REPS`
//! wall-clock runs; besides the table it emits
//! `results/checkpoint_overhead.json` to seed the bench trajectory.
//!
//! `SA_BENCH_SMOKE=1` shrinks the workload to CI-smoke size and skips the
//! JSON emission so scheduled runs cannot clobber recorded results.

use sa_bench::{emit_json, fmt_kps, Table};
use sa_types::{CheckpointPolicy, StreamItem, WindowSpec};
use sa_workloads::Mix;
use std::time::Instant;
use streamapprox::{AggregatedConfig, FixedFraction, MemoryCheckpointStore, Query, StreamApprox};

const REPS: usize = 5;
/// Items per `push_batch` call — a realistic consumer poll size, and the
/// granularity at which `checkpoint_due` is consulted.
const CHUNK: usize = 4_096;
/// Checkpoint cadence in panes; `None` never checkpoints.
const CADENCES: [Option<u32>; 3] = [None, Some(8), Some(1)];

fn smoke() -> bool {
    std::env::var_os("SA_BENCH_SMOKE").is_some()
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1))
}

struct RunStats {
    throughput: f64,
    checkpoints: u64,
    sealed_bytes: u64,
}

/// One full session run; returns push-to-finish throughput plus the
/// checkpoint count and the last sealed snapshot size.
fn run(cadence: Option<u32>, items: &[StreamItem<f64>]) -> RunStats {
    let mut policy = FixedFraction(0.2);
    let mut builder = StreamApprox::new(query(), &mut policy)
        .checkpointable()
        .aggregated(AggregatedConfig::new().with_seed(0xFEED_u64));
    if let Some(panes) = cadence {
        builder = builder.with_checkpoint_policy(CheckpointPolicy::every_panes(panes));
    }
    let mut session = builder.start();
    let mut store = MemoryCheckpointStore::new();
    let mut checkpoints = 0u64;
    let mut sealed_bytes = 0u64;
    let started = Instant::now();
    for chunk in items.chunks(CHUNK) {
        session
            .push_batch(chunk.iter().copied())
            .expect("recorded stream is in order");
        if cadence.is_some() && session.checkpoint_due() {
            sealed_bytes = session
                .checkpoint_to(&mut store)
                .expect("aggregated engine snapshots");
            checkpoints += 1;
        }
    }
    let out = session.finish();
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(out.items_ingested, items.len() as u64);
    RunStats {
        throughput: items.len() as f64 / secs,
        checkpoints,
        sealed_bytes,
    }
}

fn median_stats(cadence: Option<u32>, items: &[StreamItem<f64>]) -> RunStats {
    let mut runs: Vec<RunStats> = (0..REPS).map(|_| run(cadence, items)).collect();
    runs.sort_by(|a, b| {
        a.throughput
            .partial_cmp(&b.throughput)
            .expect("finite throughputs")
    });
    runs.remove(runs.len() / 2)
}

fn main() {
    // Smoke still spans two 1s panes, so the seal path actually runs in CI.
    let event_ms = if smoke() { 2_000 } else { 10_000 };
    // The fig4-shaped high-rate mix: ~61k items per event-time second.
    let items = Mix::gaussian([48_000.0, 12_000.0, 1_200.0]).generate(event_ms, 17);
    println!(
        "checkpoint_overhead: {} items over {event_ms} ms event time, chunk {CHUNK}, {REPS} reps",
        items.len()
    );

    let mut table = Table::new(
        "Checkpoint overhead: session throughput by snapshot cadence",
        &["cadence", "K items/s", "vs none", "checkpoints", "sealed B"],
    );
    let mut series = Vec::new();
    let mut baseline = 0.0f64;
    for cadence in CADENCES {
        let stats = median_stats(cadence, &items);
        if cadence.is_none() {
            baseline = stats.throughput;
        }
        assert!(
            cadence != Some(1) || stats.checkpoints > 0,
            "per-pane cadence must exercise the seal path"
        );
        let label = cadence.map_or("none".to_string(), |p| format!("every {p} pane(s)"));
        let vs_none = stats.throughput / baseline;
        table.row(vec![
            label.clone(),
            fmt_kps(stats.throughput),
            format!("{vs_none:.2}x"),
            stats.checkpoints.to_string(),
            stats.sealed_bytes.to_string(),
        ]);
        series.push(format!(
            "    {{\"cadence\": \"{label}\", \
             \"throughput_items_per_s\": {:.0}, \"vs_none\": {vs_none:.4}, \
             \"checkpoints\": {}, \"sealed_bytes\": {}}}",
            stats.throughput, stats.checkpoints, stats.sealed_bytes
        ));
    }
    table.emit("checkpoint_overhead");
    if smoke() {
        println!("checkpoint_overhead: smoke mode, skipping results/checkpoint_overhead.json");
        return;
    }
    emit_json(
        "checkpoint_overhead",
        &format!(
            "{{\n  \"bench\": \"checkpoint_overhead\",\n  \"items\": {},\n  \
             \"event_ms\": {event_ms},\n  \"chunk_items\": {CHUNK},\n  \"reps\": {REPS},\n  \
             \"series\": [\n{}\n  ]\n}}\n",
            items.len(),
            series.join(",\n")
        ),
    );
}
