//! Ingest hot path: what one session can swallow per second, Native vs
//! sampled, per-item `push` vs the chunked `push_batch` fast path.
//!
//! This is the bench behind ROADMAP item 1: the paper's pitch is that
//! sampling buys throughput, so sampled ingest must not run *slower* than
//! Native. The skip-ahead reservoir kernel (gap sampling by exact CDF
//! inversion, Vitter's Algorithm X) plus the end-to-end batch path
//! (`push_batch` → `Engine::push_chunk` → `OasrsSampler::observe_batch`)
//! are what close that gap: between acceptances the sampler advances over
//! whole skipped runs with zero RNG draws.
//!
//! The aggregated (consumer-path) engine is measured because it is the
//! purest ingest path — no pane buffering, no worker threads — so every
//! per-item cost shows up undiluted. Per config the bench reports the
//! median of `REPS` wall-clock runs; besides the table it emits
//! `results/ingest_hotpath.json` to seed the bench trajectory.
//!
//! `SA_BENCH_SMOKE=1` shrinks the workload to CI-smoke size and skips the
//! JSON emission so scheduled runs cannot clobber recorded results.

use sa_bench::{emit_json, fmt_kps, Table};
use sa_types::{StreamItem, WindowSpec};
use sa_workloads::Mix;
use std::time::Instant;
use streamapprox::{AggregatedConfig, FixedFraction, Query, StreamApprox};

const REPS: usize = 5;
/// Items per `push_batch` call on the batch path — a realistic consumer
/// poll size.
const CHUNK: usize = 4_096;
/// `None` is native execution (no sampling, exact accumulation).
const FRACTIONS: [Option<f64>; 4] = [None, Some(0.20), Some(0.05), Some(0.01)];

fn smoke() -> bool {
    std::env::var_os("SA_BENCH_SMOKE").is_some()
}

fn query() -> Query<f64> {
    Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1))
}

#[derive(Clone, Copy, PartialEq)]
enum Path {
    PerItem,
    Batch,
}

/// One full session run; returns ingest throughput in items/second over
/// the push-to-finish wall time.
fn run(fraction: Option<f64>, path: Path, items: &[StreamItem<f64>]) -> f64 {
    let mut policy = FixedFraction(fraction.unwrap_or(1.0));
    let mut session = StreamApprox::new(query(), &mut policy)
        .aggregated(AggregatedConfig::new().with_seed(0xFEED_u64))
        .start();
    let started = Instant::now();
    match path {
        Path::PerItem => {
            for item in items {
                session.push(*item).expect("recorded stream is in order");
            }
        }
        Path::Batch => {
            for chunk in items.chunks(CHUNK) {
                session
                    .push_batch(chunk.iter().copied())
                    .expect("recorded stream is in order");
            }
        }
    }
    let out = session.finish();
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(out.items_ingested, items.len() as u64);
    items.len() as f64 / secs
}

fn median_throughput(fraction: Option<f64>, path: Path, items: &[StreamItem<f64>]) -> f64 {
    let mut runs: Vec<f64> = (0..REPS).map(|_| run(fraction, path, items)).collect();
    runs.sort_by(|a, b| a.partial_cmp(b).expect("finite throughputs"));
    runs[runs.len() / 2]
}

fn main() {
    let event_ms = if smoke() { 400 } else { 10_000 };
    // The fig4-shaped high-rate mix: ~61k items per event-time second.
    let items = Mix::gaussian([48_000.0, 12_000.0, 1_200.0]).generate(event_ms, 17);
    println!(
        "ingest_hotpath: {} items over {event_ms} ms event time, chunk {CHUNK}, {REPS} reps",
        items.len()
    );

    let mut table = Table::new(
        "Ingest hot path: session throughput by budget and push path",
        &["budget", "path", "K items/s", "vs native"],
    );
    let mut series = Vec::new();
    let mut native_by_path = [0.0f64; 2];
    for fraction in FRACTIONS {
        for path in [Path::PerItem, Path::Batch] {
            let throughput = median_throughput(fraction, path, &items);
            let path_idx = (path == Path::Batch) as usize;
            if fraction.is_none() {
                native_by_path[path_idx] = throughput;
            }
            let budget = fraction.map_or("native".to_string(), |f| format!("{:.0}%", f * 100.0));
            let path_name = match path {
                Path::PerItem => "per-item",
                Path::Batch => "batch",
            };
            let vs_native = throughput / native_by_path[path_idx];
            table.row(vec![
                budget.clone(),
                path_name.to_string(),
                fmt_kps(throughput),
                format!("{vs_native:.2}x"),
            ]);
            series.push(format!(
                "    {{\"budget\": \"{budget}\", \"path\": \"{path_name}\", \
                 \"throughput_items_per_s\": {throughput:.0}, \
                 \"vs_native_same_path\": {vs_native:.4}}}"
            ));
        }
    }
    table.emit("ingest_hotpath");
    if smoke() {
        println!("ingest_hotpath: smoke mode, skipping results/ingest_hotpath.json");
        return;
    }
    emit_json(
        "ingest_hotpath",
        &format!(
            "{{\n  \"bench\": \"ingest_hotpath\",\n  \"items\": {},\n  \
             \"event_ms\": {event_ms},\n  \"chunk_items\": {CHUNK},\n  \"reps\": {REPS},\n  \
             \"series\": [\n{}\n  ]\n}}\n",
            items.len(),
            series.join(",\n")
        ),
    );
}
