//! Figure 7: per-slide mean time series under skew (§5.7-I).
//!
//! The skewed Gaussian stream (80% / 19% / 1%) runs for a 10-minute
//! observation with a 10 s window sliding by 5 s; each panel plots the
//! per-window mean of one sampling system against the ground truth
//! (native execution).
//!
//! Paper shape: SRS oscillates visibly around the truth (it keeps missing
//! the 1% sub-stream whose items are 100× larger); STS and StreamApprox
//! hug the ground-truth curve.

use sa_bench::{fmt_loss, mean_accuracy, run_system, Env, Metric, System, Table};
use sa_types::WindowSpec;
use sa_workloads::Mix;
use streamapprox::Query;

fn main() {
    let env = Env::host();
    // 10 minutes of event time; value-typed items (accuracy panel only —
    // no throughput is measured here, matching the paper's figure).
    let items = Mix::gaussian_skewed(2_000.0).generate(600_000, 71);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(10, 5));
    println!("fig7: {} items over 600s (120 slides)", items.len());

    let exact = run_system(&env, System::NativeSpark, 1.0, &query, items.clone());
    let srs = run_system(&env, System::SparkSrs, 0.6, &query, items.clone());
    let sts = run_system(&env, System::SparkSts, 0.6, &query, items.clone());
    let sa = run_system(&env, System::SparkStreamApprox, 0.6, &query, items);

    // The full series goes to CSV; the console shows every 10th slide.
    let mut series = Table::new(
        "Figure 7: mean value per 5s slide (ground truth vs sampled systems)",
        &["slide", "truth", "SRS", "STS", "StreamApprox"],
    );
    for (i, e) in exact.windows.iter().enumerate() {
        let lookup = |out: &streamapprox::RunOutput| {
            out.window_at(e.window)
                .map(|w| format!("{:.2}", w.mean.value))
                .unwrap_or_else(|| "-".into())
        };
        series.row(vec![
            format!("{i}"),
            format!("{:.2}", e.mean.value),
            lookup(&srs),
            lookup(&sts),
            lookup(&sa),
        ]);
    }
    // Print an abridged view; save the full series.
    let mut preview = Table::new(
        "Figure 7 (every 10th slide shown; full series in results/fig7.csv)",
        &["slide", "truth", "SRS", "STS", "StreamApprox"],
    );
    for (i, e) in exact.windows.iter().enumerate().step_by(10) {
        let lookup = |out: &streamapprox::RunOutput| {
            out.window_at(e.window)
                .map(|w| format!("{:.2}", w.mean.value))
                .unwrap_or_else(|| "-".into())
        };
        preview.row(vec![
            format!("{i}"),
            format!("{:.2}", e.mean.value),
            lookup(&srs),
            lookup(&sts),
            lookup(&sa),
        ]);
    }
    println!("{}", preview.render());
    series.emit("fig7");

    let mut summary = Table::new(
        "Figure 7 summary: deviation from ground truth over the observation",
        &["system", "mean loss %", "max loss %"],
    );
    for (label, out) in [("SRS", &srs), ("STS", &sts), ("StreamApprox", &sa)] {
        let mean = mean_accuracy(&exact, out, Metric::Mean);
        let max = exact
            .windows
            .iter()
            .filter(|e| e.mean.value != 0.0)
            .filter_map(|e| {
                out.window_at(e.window)
                    .map(|w| sa_estimate::accuracy_loss(w.mean.value, e.mean.value))
            })
            .fold(0.0f64, f64::max);
        summary.row(vec![label.into(), fmt_loss(mean), fmt_loss(max)]);
    }
    summary.emit("fig7_summary");
}
