//! Ablation: ScaSRS's two-threshold optimization (§4.1.1).
//!
//! Spark's random-sort SRS bounds its sort with two thresholds around
//! `p = s/n`: items below the low threshold are accepted outright, items
//! above the high threshold discarded, and only the narrow wait-list is
//! sorted. This ablation compares the optimized sampler against the naive
//! full random sort it replaces, and reports how little actually gets
//! sorted.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_bench::Table;
use sa_sampling::{random_sort_sample, scasrs_sample_with_stats};
use std::time::Instant;

fn median_ms<F: FnMut() -> u128>(mut run: F, reps: usize) -> f64 {
    let mut times: Vec<u128> = (0..reps).map(|_| run()).collect();
    times.sort_unstable();
    times[times.len() / 2] as f64 / 1_000.0
}

fn main() {
    let mut table = Table::new(
        "Ablation: two-threshold ScaSRS vs naive full random sort",
        &[
            "n",
            "fraction",
            "naive ms",
            "scasrs ms",
            "speedup",
            "waitlisted",
        ],
    );
    for &n in &[100_000usize, 1_000_000] {
        for &fraction in &[0.01f64, 0.10, 0.50] {
            let s = (n as f64 * fraction) as usize;
            let naive_ms = median_ms(
                || {
                    let mut rng = SmallRng::seed_from_u64(7);
                    let items: Vec<u64> = (0..n as u64).collect();
                    let started = Instant::now();
                    let out = random_sort_sample(items, s, &mut rng);
                    assert_eq!(out.len(), s);
                    started.elapsed().as_micros()
                },
                3,
            );
            let mut waitlisted = 0usize;
            let scasrs_ms = median_ms(
                || {
                    let mut rng = SmallRng::seed_from_u64(7);
                    let items: Vec<u64> = (0..n as u64).collect();
                    let started = Instant::now();
                    let (out, stats) = scasrs_sample_with_stats(items, s, &mut rng);
                    assert_eq!(out.len(), s);
                    waitlisted = stats.waitlisted;
                    started.elapsed().as_micros()
                },
                3,
            );
            table.row(vec![
                format!("{n}"),
                format!("{:.0}%", fraction * 100.0),
                format!("{naive_ms:.2}"),
                format!("{scasrs_ms:.2}"),
                format!("{:.2}x", naive_ms / scasrs_ms),
                format!("{waitlisted}"),
            ]);
        }
    }
    table.emit("ablation_threshold");
}
