//! Criterion micro-benchmarks for the two engines: narrow vs wide
//! transformations on the batched engine (the shuffle is what makes STS
//! expensive) and raw pipeline streaming throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sa_batched::{Cluster, MicroBatcher, Pds};
use sa_pipelined::{Exchange, Flow, Map};
use sa_types::{EventTime, StratumId, StreamItem};

fn items(n: usize) -> Vec<StreamItem<u64>> {
    (0..n)
        .map(|i| {
            StreamItem::new(
                StratumId(i as u32 % 4),
                EventTime::from_millis(i as i64),
                i as u64,
            )
        })
        .collect()
}

fn bench_batched(c: &mut Criterion) {
    let cluster = Cluster::new(2);
    let mut group = c.benchmark_group("batched");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("map_100k", |b| {
        b.iter_batched(
            || Pds::from_vec((0..100_000u64).collect::<Vec<_>>(), 4),
            |pds| pds.map(&cluster, |x| x * 2).count(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("reduce_by_key_100k", |b| {
        b.iter_batched(
            || Pds::from_vec((0..100_000u64).map(|i| (i % 64, i)).collect::<Vec<_>>(), 4),
            |pds| pds.reduce_by_key(&cluster, |a, b| a + b).count(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("group_by_key_100k", |b| {
        b.iter_batched(
            || Pds::from_vec((0..100_000u64).map(|i| (i % 64, i)).collect::<Vec<_>>(), 4),
            |pds| pds.group_by_key(&cluster).count(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("micro_batcher_100k", |b| {
        b.iter_batched(
            || items(100_000),
            |stream| MicroBatcher::new(stream.into_iter(), 250).count(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_pipelined(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelined");
    group.throughput(Throughput::Elements(100_000));
    group.sample_size(10);
    group.bench_function("source_map_sink_100k", |b| {
        b.iter_batched(
            || items(100_000),
            |stream| {
                Flow::source(stream, 100)
                    .then(2, Exchange::Rebalance, |_| Map::new(|v: u64| v * 2))
                    .collect()
                    .len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_batched, bench_pipelined
}
criterion_main!(benches);
