//! Figure 8: the network-traffic-analytics case study (§6.2).
//!
//! Synthetic NetFlow records with the CAIDA trace's protocol proportions;
//! the query sums per-protocol traffic per 10s/5s sliding window.
//!
//! * (a) throughput vs sampling fraction (plus natives);
//! * (b) accuracy loss vs sampling fraction;
//! * (c) throughput at fixed accuracy loss (1% and 2%).
//!
//! Paper shapes: Spark-SA ≈ SRS and >2× STS; native Spark beats STS;
//! Flink-SA leads (on real multi-core hardware); accuracy improves
//! non-linearly with the fraction, STS ≤ SA < SRS loss.

use sa_bench::{
    fmt_kps, fmt_loss, mean_accuracy, measure, throughput_at_accuracy, Env, Metric, System, Table,
};
use sa_types::WindowSpec;
use sa_workloads::{FlowRecord, NetFlowGenerator};
use streamapprox::Query;

const REPS: usize = 3;

fn main() {
    let env = Env::host();
    let items = NetFlowGenerator::new(40_000.0, 81).generate_lines(10_000);
    let query = Query::new(|line: &String| {
        FlowRecord::parse_line(line)
            .expect("valid flow record")
            .bytes as f64
    })
    .with_window(WindowSpec::sliding_secs(10, 5));
    println!("fig8: {} flow records over 10s", items.len());

    let exact = measure(&env, System::NativeSpark, 1.0, &query, &items, REPS);
    let native_flink = measure(&env, System::NativeFlink, 1.0, &query, &items, REPS);

    let mut a = Table::new(
        "Figure 8(a): throughput (K items/s) vs sampling fraction",
        &["fraction", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    let mut b = Table::new(
        "Figure 8(b): accuracy loss (%) vs sampling fraction (per-protocol sums)",
        &["fraction", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &fraction in &[0.10, 0.20, 0.40, 0.60, 0.80, 0.90] {
        let mut arow = vec![format!("{:.0}%", fraction * 100.0)];
        let mut brow = arow.clone();
        for system in System::SAMPLED {
            let out = measure(&env, system, fraction, &query, &items, REPS);
            arow.push(fmt_kps(out.throughput()));
            brow.push(fmt_loss(mean_accuracy(&exact, &out, Metric::StratumSum)));
        }
        if fraction < 0.85 {
            a.row(arow);
        }
        b.row(brow);
    }
    a.row(vec![
        "native".into(),
        fmt_kps(native_flink.throughput()),
        fmt_kps(exact.throughput()),
        "-".into(),
        "-".into(),
    ]);
    a.emit("fig8a");
    b.emit("fig8b");

    let mut c = Table::new(
        "Figure 8(c): throughput (K items/s) at fixed accuracy loss",
        &["loss", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &target in &[0.01f64, 0.02] {
        let mut row = vec![format!("{:.0}%", target * 100.0)];
        for system in System::SAMPLED {
            let (tput, fraction) = throughput_at_accuracy(
                &env,
                system,
                target,
                Metric::StratumSum,
                &query,
                &items,
                &exact,
            );
            row.push(format!("{} (f={:.2})", fmt_kps(tput), fraction));
        }
        c.row(row);
    }
    c.emit("fig8c");
}
