//! Criterion micro-benchmarks for the estimation layer: Welford updates,
//! merges, and full sum/mean estimates over realistic stratum counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sa_estimate::{estimate_mean, estimate_sum, StratumStats, Welford};
use sa_types::{Confidence, StratumId};

fn stats_fixture(strata: usize, per_stratum: usize) -> Vec<StratumStats> {
    (0..strata)
        .map(|k| {
            let acc: Welford = (0..per_stratum)
                .map(|i| (i as f64 * 0.37 + k as f64).sin() * 100.0)
                .collect();
            StratumStats::from_parts(StratumId(k as u32), (per_stratum * 3) as u64, acc)
        })
        .collect()
}

fn bench_welford(c: &mut Criterion) {
    let mut group = c.benchmark_group("welford");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("push_100k", |b| {
        b.iter(|| {
            let mut acc = Welford::new();
            for i in 0..100_000 {
                acc.push(black_box(i as f64 * 0.5));
            }
            acc.sample_variance()
        })
    });
    group.bench_function("merge_1k_accumulators", |b| {
        let parts: Vec<Welford> = (0..1_000)
            .map(|k| (0..64).map(|i| (i + k) as f64).collect())
            .collect();
        b.iter(|| {
            let mut total = Welford::new();
            for p in &parts {
                total.merge(black_box(p));
            }
            total.mean()
        })
    });
    group.finish();
}

fn bench_estimates(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimates");
    for strata in [3usize, 6, 64] {
        let stats = stats_fixture(strata, 256);
        group.bench_function(format!("sum_{strata}_strata"), |b| {
            b.iter(|| estimate_sum(black_box(&stats), Confidence::P95).value)
        });
        group.bench_function(format!("mean_{strata}_strata"), |b| {
            b.iter(|| estimate_mean(black_box(&stats), Confidence::P95).value)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_welford, bench_estimates
}
criterion_main!(benches);
