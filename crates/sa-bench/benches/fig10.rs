//! Figure 10: end-to-end latency on both case-study datasets (§6.2–6.3).
//!
//! Latency here is the paper's metric: "the total time required for
//! processing the respective dataset" at a 60% sampling fraction.
//!
//! Paper shape: StreamApprox < SRS < STS on both datasets (1.39–1.69×
//! lower than the baselines on network traffic, 1.52–2.18× on taxi).

use sa_bench::{measure, Env, System, Table};
use sa_types::WindowSpec;
use sa_workloads::{FlowRecord, NetFlowGenerator, TaxiGenerator, TaxiRide};
use streamapprox::Query;

const REPS: usize = 3;

fn main() {
    let env = Env::host();

    // Fixed-size datasets: ~800K records each.
    let flows = NetFlowGenerator::new(40_000.0, 101).generate_lines(20_000);
    let rides = TaxiGenerator::new(40_000.0, 102).generate_lines(20_000);
    println!(
        "fig10: {} flow records, {} ride records",
        flows.len(),
        rides.len()
    );

    let flow_query = Query::new(|line: &String| {
        FlowRecord::parse_line(line)
            .expect("valid flow record")
            .bytes as f64
    })
    .with_window(WindowSpec::sliding_secs(10, 5));
    let ride_query = Query::new(|line: &String| {
        TaxiRide::parse_line(line)
            .expect("valid ride record")
            .distance_miles
    })
    .with_window(WindowSpec::sliding_secs(10, 5));

    let mut table = Table::new(
        "Figure 10: dataset-processing latency (ms), fraction 60%",
        &["system", "network traffic", "NYC taxi"],
    );
    for system in [
        System::SparkSts,
        System::SparkSrs,
        System::SparkStreamApprox,
    ] {
        let flow_ms = measure(&env, system, 0.6, &flow_query, &flows, REPS)
            .elapsed
            .as_millis();
        let ride_ms = measure(&env, system, 0.6, &ride_query, &rides, REPS)
            .elapsed
            .as_millis();
        table.row(vec![
            system.label().into(),
            format!("{flow_ms}"),
            format!("{ride_ms}"),
        ]);
    }
    table.emit("fig10");
}
