//! Ablation: distributed OASRS (per-worker reservoirs of size `N/w` whose
//! samples union, §3.2 "Distributed execution") vs a single global
//! sampler.
//!
//! Claims under test: (1) sharding costs no accuracy — the union's
//! estimates match the single sampler's statistically; (2) per-worker
//! sampling parallelizes without synchronization, so wall-clock sampling
//! time drops with workers (bounded here by the 2-core host).

use sa_bench::Table;
use sa_estimate::{accuracy_loss, estimate_sum, stats_of};
use sa_sampling::{OasrsSampler, SizingPolicy};
use sa_types::{Confidence, StratifiedSample};
use sa_workloads::Mix;
use std::time::Instant;

fn main() {
    let items = Mix::gaussian([40_000.0, 10_000.0, 2_000.0]).generate(10_000, 111);
    let true_sum: f64 = items.iter().map(|i| i.value).sum();
    println!(
        "ablation_merge: {} items, true sum {:.3e}",
        items.len(),
        true_sum
    );

    let sizing = SizingPolicy::PerStratum(4_096);
    let mut table = Table::new(
        "Ablation: distributed OASRS vs single sampler (capacity 4096/stratum)",
        &["workers", "sampling ms", "estimate loss %", "sampled items"],
    );

    for &workers in &[1usize, 2, 4, 8] {
        // Average accuracy over a few seeds; time the sampling pass once
        // per seed and report the median.
        let mut times = Vec::new();
        let mut losses = Vec::new();
        let mut sampled = 0u64;
        for seed in 0..5u64 {
            let started = Instant::now();
            let sample: StratifiedSample<f64> = if workers == 1 {
                let mut s = OasrsSampler::new(sizing, seed);
                for item in &items {
                    s.observe(item.stratum, item.value);
                }
                s.finish_interval()
            } else {
                // Chunk the stream across workers and union the results —
                // run the per-worker passes on threads to expose the
                // synchronization-free parallelism.
                let chunks: Vec<&[sa_types::StreamItem<f64>]> =
                    items.chunks(items.len().div_ceil(workers)).collect();
                let partials: Vec<StratifiedSample<f64>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .enumerate()
                        .map(|(w, chunk)| {
                            scope.spawn(move || {
                                let mut s = OasrsSampler::for_worker(sizing, seed, w, workers);
                                for item in chunk {
                                    s.observe(item.stratum, item.value);
                                }
                                s.finish_interval()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker"))
                        .collect()
                });
                let mut union = StratifiedSample::new();
                for p in partials {
                    union.union(p);
                }
                union
            };
            times.push(started.elapsed().as_secs_f64() * 1_000.0);
            let stats = stats_of(&sample, |v| *v);
            let estimate = estimate_sum(&stats, Confidence::P95);
            losses.push(accuracy_loss(estimate.value, true_sum));
            sampled = sample.total_sampled();
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean_loss = losses.iter().sum::<f64>() / losses.len() as f64;
        table.row(vec![
            format!("{workers}"),
            format!("{:.2}", times[times.len() / 2]),
            format!("{:.3}", mean_loss * 100.0),
            format!("{sampled}"),
        ]);
    }
    table.emit("ablation_merge");
}
