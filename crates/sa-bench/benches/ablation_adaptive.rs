//! Ablation: the adaptive feedback mechanism (§4.2.1) under a mid-run
//! arrival-rate flip (Figure 5a's regime change).
//!
//! A fixed-fraction policy wastes budget when rates drop and under-samples
//! when they surge; the accuracy-budget controller re-tunes the reservoir
//! capacities each interval. Both run the same 8K:2K:100 → 100:2K:8K flip;
//! the table reports accuracy and work before/after the flip.

use sa_aggregator::merge_by_time;
use sa_batched::Cluster;
use sa_bench::Table;
use sa_estimate::accuracy_loss;
use sa_types::{Confidence, EventTime, StreamItem, WindowSpec};
use sa_workloads::Mix;
use streamapprox::{
    run_batched, AccuracyPolicy, BatchedConfig, BatchedSystem, CostPolicy, FixedFraction, Query,
    RunOutput,
};

fn flipped_stream() -> Vec<StreamItem<f64>> {
    let mix = Mix::gaussian([1.0, 1.0, 1.0]);
    let first = mix.generate_with_rates(&[8_000.0, 2_000.0, 100.0], 15_000, 121);
    let second: Vec<StreamItem<f64>> = mix
        .generate_with_rates(&[100.0, 2_000.0, 8_000.0], 15_000, 122)
        .into_iter()
        .map(|i| {
            StreamItem::new(
                i.stratum,
                EventTime::from_millis(i.time.as_millis() + 15_000),
                i.value,
            )
        })
        .collect();
    merge_by_time(vec![first, second])
}

fn phase_loss(out: &RunOutput, exact: &RunOutput, flip_ms: i64) -> (f64, f64) {
    let mut before = (0.0, 0usize);
    let mut after = (0.0, 0usize);
    for e in &exact.windows {
        let Some(a) = out.window_at(e.window) else {
            continue;
        };
        if e.mean.value == 0.0 {
            continue;
        }
        let loss = accuracy_loss(a.mean.value, e.mean.value);
        if e.window.end.as_millis() <= flip_ms {
            before.0 += loss;
            before.1 += 1;
        } else if e.window.start.as_millis() >= flip_ms {
            after.0 += loss;
            after.1 += 1;
        }
    }
    (
        before.0 / before.1.max(1) as f64,
        after.0 / after.1.max(1) as f64,
    )
}

fn main() {
    let stream = flipped_stream();
    println!(
        "ablation_adaptive: {} items, rates flip at t=15s",
        stream.len()
    );
    let config = BatchedConfig::new(Cluster::new(2)).with_batch_interval_ms(500);
    let query = Query::new(|v: &f64| *v)
        .with_window(WindowSpec::sliding_secs(10, 5))
        .with_confidence(Confidence::P95);

    let exact = run_batched(
        &config,
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        stream.clone(),
    );

    let mut table = Table::new(
        "Ablation: adaptive accuracy policy vs fixed fraction across a rate flip",
        &[
            "policy",
            "loss before %",
            "loss after %",
            "items aggregated",
        ],
    );
    let configs: Vec<(&str, Box<dyn CostPolicy>)> = vec![
        ("fixed 10%", Box::new(FixedFraction(0.1))),
        ("fixed 60%", Box::new(FixedFraction(0.6))),
        (
            "adaptive (1% err)",
            Box::new(AccuracyPolicy::new(0.01, 64, 16, 1 << 18)),
        ),
    ];
    for (label, mut policy) in configs {
        let out = run_batched(
            &config,
            BatchedSystem::StreamApprox,
            &query,
            policy.as_mut(),
            stream.clone(),
        );
        let (before, after) = phase_loss(&out, &exact, 15_000);
        table.row(vec![
            label.into(),
            format!("{:.3}", before * 100.0),
            format!("{:.3}", after * 100.0),
            format!("{}", out.items_aggregated),
        ]);
    }
    table.emit("ablation_adaptive");
}
