//! Criterion micro-benchmarks for the sampling layer: the per-item costs
//! that determine where StreamApprox's throughput advantage begins.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_sampling::{
    sample_by_key_exact, scasrs_sample, BernoulliSampler, OasrsSampler, Reservoir, SizingPolicy,
};
use sa_types::StratumId;

fn bench_reservoir(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("observe_100k_cap1k", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(1),
            |mut rng| {
                let mut r = Reservoir::new(1_000);
                for i in 0..100_000u64 {
                    r.observe(black_box(i), &mut rng);
                }
                r.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_oasrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("oasrs");
    group.throughput(Throughput::Elements(100_000));
    for strata in [3u32, 16, 64] {
        group.bench_function(format!("observe_100k_{strata}_strata"), |b| {
            b.iter(|| {
                let mut s: OasrsSampler<u64> = OasrsSampler::new(SizingPolicy::PerStratum(256), 2);
                for i in 0..100_000u64 {
                    s.observe(StratumId(i as u32 % strata), black_box(i));
                }
                s.finish_interval().total_sampled()
            })
        });
    }
    group.finish();
}

fn bench_scasrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("scasrs");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("sample_10k_of_100k", |b| {
        b.iter_batched(
            || {
                (
                    (0..100_000u64).collect::<Vec<_>>(),
                    SmallRng::seed_from_u64(3),
                )
            },
            |(items, mut rng)| scasrs_sample(items, 10_000, &mut rng).len(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_stratified(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("sample_by_key_exact_100k", |b| {
        b.iter_batched(
            || {
                let groups: Vec<(StratumId, Vec<u64>)> = (0..4u32)
                    .map(|k| (StratumId(k), (0..25_000u64).collect()))
                    .collect();
                (groups, SmallRng::seed_from_u64(4))
            },
            |(groups, mut rng)| sample_by_key_exact(groups, 0.1, &mut rng).total_sampled(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_bernoulli(c: &mut Criterion) {
    let mut group = c.benchmark_group("bernoulli");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("keep_100k_at_40pct", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(5),
            |mut rng| {
                let s = BernoulliSampler::new(0.4);
                (0..100_000u64).filter(|_| s.keep(&mut rng)).count()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reservoir, bench_oasrs, bench_scasrs, bench_stratified, bench_bernoulli
}
criterion_main!(benches);
