//! Figure 9: the New York taxi-ride-analytics case study (§6.3).
//!
//! Synthetic rides over the six boroughs (Manhattan-dominated); the query
//! averages trip distance per borough per 10s/5s sliding window.
//!
//! * (a) throughput vs sampling fraction (plus natives);
//! * (b) accuracy loss vs sampling fraction;
//! * (c) throughput at fixed accuracy loss (0.1% and 0.4%).
//!
//! Paper shapes: Spark-SA ≈ SRS, ≈2× STS; all systems achieve similar
//! accuracy on this dataset (per-borough distance distributions are
//! well-behaved); at fixed accuracy StreamApprox leads.

use sa_bench::{
    fmt_kps, fmt_loss, mean_accuracy, measure, throughput_at_accuracy, Env, Metric, System, Table,
};
use sa_types::WindowSpec;
use sa_workloads::{TaxiGenerator, TaxiRide};
use streamapprox::Query;

const REPS: usize = 3;

fn main() {
    let env = Env::host();
    let items = TaxiGenerator::new(40_000.0, 91).generate_lines(10_000);
    let query = Query::new(|line: &String| {
        TaxiRide::parse_line(line)
            .expect("valid ride record")
            .distance_miles
    })
    .with_window(WindowSpec::sliding_secs(10, 5));
    println!("fig9: {} ride records over 10s", items.len());

    let exact = measure(&env, System::NativeSpark, 1.0, &query, &items, REPS);
    let native_flink = measure(&env, System::NativeFlink, 1.0, &query, &items, REPS);

    let mut a = Table::new(
        "Figure 9(a): throughput (K items/s) vs sampling fraction",
        &["fraction", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    let mut b = Table::new(
        "Figure 9(b): accuracy loss (%) vs sampling fraction (per-borough means)",
        &["fraction", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &fraction in &[0.10, 0.20, 0.40, 0.60, 0.80, 0.90] {
        let mut arow = vec![format!("{:.0}%", fraction * 100.0)];
        let mut brow = arow.clone();
        for system in System::SAMPLED {
            let out = measure(&env, system, fraction, &query, &items, REPS);
            arow.push(fmt_kps(out.throughput()));
            brow.push(fmt_loss(mean_accuracy(&exact, &out, Metric::StratumMean)));
        }
        if fraction < 0.85 {
            a.row(arow);
        }
        b.row(brow);
    }
    a.row(vec![
        "native".into(),
        fmt_kps(native_flink.throughput()),
        fmt_kps(exact.throughput()),
        "-".into(),
        "-".into(),
    ]);
    a.emit("fig9a");
    b.emit("fig9b");

    let mut c = Table::new(
        "Figure 9(c): throughput (K items/s) at fixed accuracy loss",
        &["loss", "Flink-SA", "Spark-SA", "Spark-SRS", "Spark-STS"],
    );
    for &target in &[0.001f64, 0.004] {
        let mut row = vec![format!("{:.1}%", target * 100.0)];
        for system in System::SAMPLED {
            let (tput, fraction) = throughput_at_accuracy(
                &env,
                system,
                target,
                Metric::StratumMean,
                &query,
                &items,
                &exact,
            );
            row.push(format!("{} (f={:.2})", fmt_kps(tput), fraction));
        }
        c.row(row);
    }
    c.emit("fig9c");
}
