//! Distributed loopback: coordinator + K TCP workers vs the in-process
//! sharded engine at the same K.
//!
//! Every digest crosses a real loopback socket in the `sa-net` frame
//! format, so the delta between the two series is the price of the wire:
//! encoding, framing, kernel round-trips and coordinator-side decode.
//! The mergeable-sampler design keeps that price off the hot path — only
//! compact per-pane sampler state travels, never items — so distributed
//! throughput should track the sharded engine, and accuracy must not
//! move at all.
//!
//! Besides the usual table + CSV, emits
//! `results/distributed_loopback.json` with both series for charting.

use sa_batched::Cluster;
use sa_bench::{emit_json, fmt_kps, fmt_loss, mean_accuracy, Metric, Table};
use sa_types::{StreamItem, WindowSpec};
use sa_workloads::Mix;
use std::thread;
use std::time::Duration;
use streamapprox::{
    connect_worker, run_batched, ApproxSession, BatchedConfig, BatchedSystem, DistributedConfig,
    FixedFraction, Query, RunOutput, ShardedConfig, StreamApprox,
};

const REPS: usize = 3;
const FRACTION: f64 = 0.2;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn first_pane(items: &[StreamItem<f64>], query: &Query<f64>) -> usize {
    items
        .iter()
        .take_while(|i| i.time.as_millis() < query.window().slide_millis())
        .count()
}

fn run_sharded(shards: usize, items: &[StreamItem<f64>], query: &Query<f64>) -> RunOutput {
    let mut policy = FixedFraction(FRACTION);
    let mut session = StreamApprox::new(query.clone(), &mut policy)
        .sharded(
            ShardedConfig::new(shards)
                .with_seed(0xD157_u64)
                .with_expected_pane_items(first_pane(items, query)),
        )
        .start();
    session
        .push_batch(items.iter().copied())
        .expect("recorded stream is in order");
    session.finish()
}

fn run_distributed(workers: usize, items: &[StreamItem<f64>], query: &Query<f64>) -> RunOutput {
    // Round-robin partitioning preserves event-time order per worker.
    let mut shards: Vec<Vec<StreamItem<f64>>> = vec![Vec::new(); workers];
    for (i, item) in items.iter().enumerate() {
        shards[i % workers].push(*item);
    }
    let mut policy = FixedFraction(FRACTION);
    let coordinator = StreamApprox::new(query.clone(), &mut policy)
        .distributed(
            DistributedConfig::new(workers as u32)
                .with_seed(0xD157_u64.into())
                .with_expected_pane_items(first_pane(items, query))
                .with_timeout(Duration::from_secs(60)),
        )
        .expect("bind a loopback coordinator");
    let addr = coordinator.addr();
    let handles: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(w, sub)| {
            thread::spawn(move || {
                let engine =
                    connect_worker(addr, w as u32, false, |v: &f64| *v).expect("worker joins");
                let mut session = ApproxSession::from_engine(Box::new(engine));
                session.push_batch(sub).expect("sub-stream is in order");
                session.finish()
            })
        })
        .collect();
    let out = coordinator.finish().expect("clean loopback run");
    for handle in handles {
        handle.join().expect("worker thread");
    }
    out
}

/// Fraction of populated windows whose mean interval contains the exact
/// mean.
fn containment(exact: &RunOutput, approx: &RunOutput) -> f64 {
    let mut contained = 0usize;
    let mut total = 0usize;
    for (e, a) in exact.windows.iter().zip(&approx.windows) {
        if e.sum.population_size == 0 {
            continue;
        }
        total += 1;
        let (lo, hi) = a.mean.interval();
        contained += usize::from(lo <= e.mean.value && e.mean.value <= hi);
    }
    if total == 0 {
        1.0
    } else {
        contained as f64 / total as f64
    }
}

fn median_run(mut runs: Vec<RunOutput>) -> RunOutput {
    runs.sort_by(|a, b| {
        a.throughput()
            .partial_cmp(&b.throughput())
            .expect("finite throughputs")
    });
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // `SA_BENCH_SMOKE=1`: CI-smoke size, and no JSON so scheduled runs
    // cannot clobber recorded results.
    let smoke = std::env::var_os("SA_BENCH_SMOKE").is_some();
    let event_ms = if smoke { 400 } else { 10_000 };
    let items = Mix::gaussian([48_000.0, 12_000.0, 1_200.0]).generate(event_ms, 41);
    let query = Query::new(|v: &f64| *v).with_window(WindowSpec::sliding_secs(2, 1));
    println!(
        "distributed_loopback: {} items, fraction {FRACTION}, {cores} host core(s)",
        items.len()
    );
    let exact = run_batched(
        &BatchedConfig::new(Cluster::new(2)),
        BatchedSystem::Native,
        &query,
        &mut FixedFraction(1.0),
        items.clone(),
    );

    let mut table = Table::new(
        "Distributed loopback: TCP digest shipping vs in-process sharding",
        &[
            "K",
            "sharded K it/s",
            "distrib K it/s",
            "loss %",
            "CI containment",
        ],
    );
    let mut series = Vec::new();
    for workers in WORKER_COUNTS {
        let sharded = median_run(
            (0..REPS)
                .map(|_| run_sharded(workers, &items, &query))
                .collect(),
        );
        let distributed = median_run(
            (0..REPS)
                .map(|_| run_distributed(workers, &items, &query))
                .collect(),
        );
        assert_eq!(
            distributed.items_ingested,
            items.len() as u64,
            "every item reaches a worker"
        );
        assert_eq!(
            distributed.windows.len(),
            exact.windows.len(),
            "the coordinator finalizes every window"
        );
        let loss = mean_accuracy(&exact, &distributed, Metric::Mean);
        let contain = containment(&exact, &distributed);
        table.row(vec![
            workers.to_string(),
            fmt_kps(sharded.throughput()),
            fmt_kps(distributed.throughput()),
            fmt_loss(loss),
            format!("{contain:.2}"),
        ]);
        series.push(format!(
            "    {{\"workers\": {workers}, \"sharded_items_per_s\": {:.0}, \
             \"distributed_items_per_s\": {:.0}, \"mean_accuracy_loss\": {loss:.6}, \
             \"ci_containment\": {contain:.4}}}",
            sharded.throughput(),
            distributed.throughput()
        ));
    }
    table.emit("distributed_loopback");
    if smoke {
        println!("distributed_loopback: smoke mode, skipping results/distributed_loopback.json");
        return;
    }
    emit_json(
        "distributed_loopback",
        &format!(
            "{{\n  \"bench\": \"distributed_loopback\",\n  \"host_cores\": {cores},\n  \
             \"items\": {},\n  \"fraction\": {FRACTION},\n  \"reps\": {REPS},\n  \
             \"series\": [\n{}\n  ]\n}}\n",
            items.len(),
            series.join(",\n")
        ),
    );
}
