//! Shared harness for the figure-reproduction benches.
//!
//! Every panel of the paper's evaluation (Figures 4–10) has a bench target
//! under `benches/` named after it; each builds its workload here, runs the
//! systems under comparison, and prints the same rows/series the paper
//! reports (plus a CSV copy under `results/`). Absolute numbers differ from
//! the paper's 17-node cluster — EXPERIMENTS.md records the shape checks
//! that must hold instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sa_batched::Cluster;
use sa_estimate::accuracy_loss;
use sa_types::{StratumId, StreamItem};
use std::fmt::Write as _;
use std::sync::OnceLock;
use streamapprox::{
    run_batched, run_pipelined, BatchedConfig, BatchedSystem, FixedFraction, PipelinedConfig,
    PipelinedSystem, Query, RunOutput,
};

/// The six systems of the paper's comparison (§5.1 methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Flink-based StreamApprox.
    FlinkStreamApprox,
    /// Spark-based StreamApprox.
    SparkStreamApprox,
    /// Spark-based simple random sampling.
    SparkSrs,
    /// Spark-based stratified sampling.
    SparkSts,
    /// Native Spark (no sampling).
    NativeSpark,
    /// Native Flink (no sampling).
    NativeFlink,
}

impl System {
    /// The four sampling systems compared in the accuracy panels.
    pub const SAMPLED: [System; 4] = [
        System::FlinkStreamApprox,
        System::SparkStreamApprox,
        System::SparkSrs,
        System::SparkSts,
    ];

    /// All six systems, in the paper's legend order.
    pub const ALL: [System; 6] = [
        System::FlinkStreamApprox,
        System::SparkStreamApprox,
        System::SparkSrs,
        System::SparkSts,
        System::NativeFlink,
        System::NativeSpark,
    ];

    /// Short label used in table headers.
    pub fn label(self) -> &'static str {
        match self {
            System::FlinkStreamApprox => "Flink-SA",
            System::SparkStreamApprox => "Spark-SA",
            System::SparkSrs => "Spark-SRS",
            System::SparkSts => "Spark-STS",
            System::NativeSpark => "NativeSpark",
            System::NativeFlink => "NativeFlink",
        }
    }
}

/// Execution environment shared by a bench's runs, sized for the host.
#[derive(Debug, Clone)]
pub struct Env {
    /// Batched-engine configuration (Spark analogue).
    pub batched: BatchedConfig,
    /// Pipelined-engine configuration (Flink analogue).
    pub pipelined: PipelinedConfig,
}

impl Env {
    /// An environment over a cluster with the given worker count.
    pub fn with_workers(workers: usize) -> Env {
        Env {
            batched: BatchedConfig::new(Cluster::new(workers)),
            pipelined: PipelinedConfig::new().with_sample_workers(workers),
        }
    }

    /// The default environment: workers = available cores (min 2).
    pub fn host() -> Env {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2);
        Env::with_workers(cores)
    }
}

/// Runs one system at one sampling fraction over a recorded stream.
/// Native systems ignore the fraction.
pub fn run_system<R>(
    env: &Env,
    system: System,
    fraction: f64,
    query: &Query<R>,
    items: Vec<StreamItem<R>>,
) -> RunOutput
where
    R: Send + Sync + Clone + 'static,
{
    match system {
        System::SparkStreamApprox => run_batched(
            &env.batched,
            BatchedSystem::StreamApprox,
            query,
            &mut FixedFraction(fraction),
            items,
        ),
        System::SparkSrs => run_batched(
            &env.batched,
            BatchedSystem::Srs,
            query,
            &mut FixedFraction(fraction),
            items,
        ),
        System::SparkSts => run_batched(
            &env.batched,
            BatchedSystem::Sts,
            query,
            &mut FixedFraction(fraction),
            items,
        ),
        System::NativeSpark => run_batched(
            &env.batched,
            BatchedSystem::Native,
            query,
            &mut FixedFraction(1.0),
            items,
        ),
        System::FlinkStreamApprox => run_pipelined(
            &env.pipelined,
            PipelinedSystem::StreamApprox,
            query,
            &mut FixedFraction(fraction),
            items,
        ),
        System::NativeFlink => run_pipelined(
            &env.pipelined,
            PipelinedSystem::Native,
            query,
            &mut FixedFraction(1.0),
            items,
        ),
    }
}

/// Runs one system `reps` times and returns the run with the median
/// throughput — the paper averages over 10 runs (§6.1); the median is the
/// noise-robust equivalent affordable at repo scale.
pub fn measure<R>(
    env: &Env,
    system: System,
    fraction: f64,
    query: &Query<R>,
    items: &[StreamItem<R>],
    reps: usize,
) -> RunOutput
where
    R: Send + Sync + Clone + 'static,
{
    assert!(reps > 0, "need at least one repetition");
    let mut runs: Vec<RunOutput> = (0..reps)
        .map(|_| run_system(env, system, fraction, query, items.to_vec()))
        .collect();
    runs.sort_by(|a, b| {
        a.throughput()
            .partial_cmp(&b.throughput())
            .expect("finite throughputs")
    });
    runs.swap_remove(runs.len() / 2)
}

/// Which answer the accuracy metric compares (matches each figure's query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// The windowed global mean (microbenchmarks).
    Mean,
    /// The windowed global sum.
    Sum,
    /// Per-stratum sums, averaged over strata (network case study).
    StratumSum,
    /// Per-stratum means, averaged over strata (taxi case study).
    StratumMean,
}

/// The paper's accuracy-loss metric (`|approx − exact| / exact`, §6.1)
/// averaged over all windows (and strata, for per-stratum metrics) of a
/// run, with the native run as ground truth. Windows with zero ground
/// truth are skipped.
pub fn mean_accuracy(exact: &RunOutput, approx: &RunOutput, metric: Metric) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for e in &exact.windows {
        let Some(a) = approx.window_at(e.window) else {
            continue;
        };
        match metric {
            Metric::Mean => {
                if e.mean.value != 0.0 {
                    total += accuracy_loss(a.mean.value, e.mean.value);
                    n += 1;
                }
            }
            Metric::Sum => {
                if e.sum.value != 0.0 {
                    total += accuracy_loss(a.sum.value, e.sum.value);
                    n += 1;
                }
            }
            Metric::StratumSum => {
                for (stratum, er) in &e.sum_by_stratum {
                    if er.value == 0.0 {
                        continue;
                    }
                    // A lost stratum is 100% loss — SRS pays for overlooked
                    // sub-streams here, as in the paper.
                    let av = a.stratum_sum(*stratum).map(|r| r.value).unwrap_or(0.0);
                    total += accuracy_loss(av, er.value).min(1.0);
                    n += 1;
                }
            }
            Metric::StratumMean => {
                for (stratum, er) in &e.mean_by_stratum {
                    if er.value == 0.0 {
                        continue;
                    }
                    let av = a.stratum_mean(*stratum).map(|r| r.value).unwrap_or(0.0);
                    total += accuracy_loss(av, er.value).min(1.0);
                    n += 1;
                }
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Finds, by bisection over the sampling fraction, the throughput a system
/// reaches at a given accuracy loss — the methodology of Figures 6(b),
/// 8(c), 9(c) ("we fixed the same accuracy loss for all four systems and
/// then measured their respective throughputs").
pub fn throughput_at_accuracy<R>(
    env: &Env,
    system: System,
    target_loss: f64,
    metric: Metric,
    query: &Query<R>,
    items: &[StreamItem<R>],
    exact: &RunOutput,
) -> (f64, f64)
where
    R: Send + Sync + Clone + 'static,
{
    // Accuracy loss decreases with fraction; find the smallest fraction
    // whose loss ≤ target, then report that run's throughput.
    let mut lo = 0.01;
    let mut hi = 1.0;
    let mut best: Option<(f64, f64)> = None;
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        let out = run_system(env, system, mid, query, items.to_vec());
        let loss = mean_accuracy(exact, &out, metric);
        if loss <= target_loss {
            best = Some((out.throughput(), mid));
            hi = mid;
        } else {
            lo = mid;
        }
    }
    best.unwrap_or_else(|| {
        let out = run_system(env, system, 1.0, query, items.to_vec());
        (out.throughput(), 1.0)
    })
}

/// A result table printed to stdout and mirrored as CSV under `results/`.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut header = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(header, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = results_dir();
        if std::fs::create_dir_all(dir).is_ok() {
            let mut csv = String::new();
            let _ = writeln!(csv, "{}", self.headers.join(","));
            for row in &self.rows {
                let _ = writeln!(csv, "{}", row.join(","));
            }
            let path = format!("{dir}/{name}.csv");
            if std::fs::write(&path, csv).is_ok() {
                println!("   (saved {path})");
            }
        }
    }
}

/// Writes a machine-readable result file to `results/<name>.json` and
/// prints where it went — the companion of [`Table::emit`] for benches
/// whose output feeds tooling (trend lines, regression gates) rather than
/// eyes. The caller provides the JSON body; see `benches/shard_scaling.rs`
/// for the shape convention (`bench`, `host`, `series`).
pub fn emit_json(name: &str, json: &str) {
    let dir = results_dir();
    if std::fs::create_dir_all(dir).is_ok() {
        let path = format!("{dir}/{name}.json");
        if std::fs::write(&path, json).is_ok() {
            println!("   (saved {path})");
        }
    }
}

fn results_dir() -> &'static str {
    static DIR: OnceLock<String> = OnceLock::new();
    DIR.get_or_init(|| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")))
}

/// Formats a throughput as `K items/s`.
pub fn fmt_kps(throughput: f64) -> String {
    format!("{:.0}", throughput / 1_000.0)
}

/// Formats an accuracy loss as a percentage.
pub fn fmt_loss(loss: f64) -> String {
    format!("{:.3}", loss * 100.0)
}

/// Looks up a per-stratum value in a window result for time-series plots.
pub fn stratum_of(id: u32) -> StratumId {
    StratumId(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_types::WindowSpec;
    use sa_workloads::Mix;

    fn tiny_env() -> Env {
        Env::with_workers(2)
    }

    fn tiny_query() -> Query<f64> {
        Query::new(|v: &f64| *v).with_window(WindowSpec::tumbling_millis(1_000))
    }

    #[test]
    fn all_systems_run_the_same_stream() {
        let env = tiny_env();
        let items = Mix::gaussian([800.0, 200.0, 20.0]).generate(2_000, 1);
        let query = tiny_query();
        for system in System::ALL {
            let out = run_system(&env, system, 0.5, &query, items.clone());
            assert_eq!(out.items_ingested, items.len() as u64, "{}", system.label());
            assert!(!out.windows.is_empty(), "{}", system.label());
        }
    }

    #[test]
    fn accuracy_metric_is_zero_for_identical_runs() {
        let env = tiny_env();
        let items = Mix::gaussian([500.0, 100.0, 10.0]).generate(2_000, 2);
        let query = tiny_query();
        let exact = run_system(&env, System::NativeSpark, 1.0, &query, items.clone());
        for metric in [
            Metric::Mean,
            Metric::Sum,
            Metric::StratumSum,
            Metric::StratumMean,
        ] {
            assert_eq!(mean_accuracy(&exact, &exact, metric), 0.0, "{metric:?}");
        }
    }

    #[test]
    fn sampled_run_has_nonzero_but_bounded_loss() {
        let env = tiny_env();
        let items = Mix::gaussian([2_000.0, 400.0, 40.0]).generate(2_000, 3);
        let query = tiny_query();
        let exact = run_system(&env, System::NativeSpark, 1.0, &query, items.clone());
        let approx = run_system(&env, System::SparkStreamApprox, 0.4, &query, items);
        let loss = mean_accuracy(&exact, &approx, Metric::Mean);
        assert!(loss > 0.0);
        assert!(loss < 0.1, "loss {loss}");
    }

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
