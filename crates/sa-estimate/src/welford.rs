//! Welford's online algorithm for streaming mean and variance.
//!
//! The estimators of §3.3 need, per stratum, the sample mean `Ī_i` and the
//! unbiased sample variance `s_i²` (Equation 7). Welford's recurrence
//! computes both in one numerically stable pass without storing the items.

use sa_types::wire::put_varint;
use sa_types::{SaError, WireDecode, WireEncode, WireReader};
use serde::{Deserialize, Serialize};

/// A streaming accumulator for count, mean and unbiased sample variance.
///
/// # Example
///
/// ```
/// use sa_estimate::Welford;
///
/// let mut acc = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 8);
/// assert!((acc.mean() - 5.0).abs() < 1e-12);
/// // Unbiased sample variance of the classic example is 32/7.
/// assert!((acc.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of the observations (`mean × count`).
    #[inline]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Unbiased sample variance `s² = Σ(x − x̄)² / (n − 1)` (Equation 7).
    ///
    /// Returns 0 for fewer than two observations: with a single sampled
    /// item the within-stratum dispersion is unobservable, and the paper's
    /// variance estimator degrades gracefully to claiming none (see
    /// `sa-estimate`'s crate docs for the implications).
    #[inline]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance `Σ(x − x̄)² / n` (0 when empty).
    #[inline]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance), as if every observation had been pushed here.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

impl WireEncode for Welford {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.count);
        self.mean.encode(out);
        self.m2.encode(out);
    }
}

impl WireDecode for Welford {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let count = r.read_varint()?;
        let mean = r.read_f64()?;
        let m2 = r.read_f64()?;
        // An empty accumulator must be all-zero or `push`/`merge` would
        // start from a phantom mean; m2 is a sum of squares and can never
        // go negative (NaN passes — pushing NaN values is legitimate).
        if count == 0 && (mean != 0.0 || m2 != 0.0) {
            return Err(SaError::Wire(
                "welford accumulator empty but non-zero".to_string(),
            ));
        }
        if m2 < 0.0 {
            return Err(SaError::Wire(format!("negative welford m2 {m2}")));
        }
        Ok(Welford { count, mean, m2 })
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Welford::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

impl Extend<f64> for Welford {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_stats(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn empty_accumulator_is_zeroed() {
        let acc = Welford::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.sum(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let acc: Welford = [5.0].into_iter().collect();
        assert_eq!(acc.mean(), 5.0);
        assert_eq!(acc.sample_variance(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let acc: Welford = xs.iter().copied().collect();
        let (mean, var) = naive_stats(&xs);
        assert!((acc.mean() - mean).abs() < 1e-10);
        assert!((acc.sample_variance() - var).abs() < 1e-10);
        assert!((acc.sum() - xs.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Naive two-pass Σx² − n·x̄² catastrophically cancels here.
        let xs: Vec<f64> = (0..1_000).map(|i| 1e9 + (i % 7) as f64).collect();
        let acc: Welford = xs.iter().copied().collect();
        let (mean, var) = naive_stats(&xs);
        assert!((acc.mean() - mean).abs() / mean < 1e-12);
        assert!((acc.sample_variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..57).map(|i| i as f64 * 0.7 - 3.0).collect();
        let (a_part, b_part) = xs.split_at(23);
        let mut a: Welford = a_part.iter().copied().collect();
        let b: Welford = b_part.iter().copied().collect();
        a.merge(&b);
        let all: Welford = xs.iter().copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Welford = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn wire_roundtrip_preserves_bits() {
        let acc: Welford = (0..100).map(|i| (i as f64).sin() * 1e6).collect();
        let back = Welford::from_wire_bytes(&acc.to_wire_bytes()).unwrap();
        assert_eq!(back, acc);
        // Merging the decoded copy equals merging the original, bit for bit.
        let other: Welford = [7.0, 8.0, 9.0].into_iter().collect();
        let mut m1 = acc;
        m1.merge(&other);
        let mut m2 = back;
        m2.merge(&Welford::from_wire_bytes(&other.to_wire_bytes()).unwrap());
        assert_eq!(m1, m2);
    }

    #[test]
    fn hostile_welford_payloads_rejected() {
        // Empty-but-nonzero accumulator.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 0);
        5.0f64.encode(&mut bytes);
        0.0f64.encode(&mut bytes);
        assert!(Welford::from_wire_bytes(&bytes).is_err());
        // Negative sum of squares.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 3);
        1.0f64.encode(&mut bytes);
        (-1.0f64).encode(&mut bytes);
        assert!(Welford::from_wire_bytes(&bytes).is_err());
        // Truncations error instead of panicking.
        let good: Welford = [1.0, 2.0].into_iter().collect();
        let full = good.to_wire_bytes();
        for cut in 0..full.len() {
            assert!(Welford::from_wire_bytes(&full[..cut]).is_err());
        }
    }

    #[test]
    fn extend_accumulates() {
        let mut acc = Welford::new();
        acc.extend([1.0, 2.0, 3.0]);
        acc.extend([4.0]);
        assert_eq!(acc.count(), 4);
        assert!((acc.mean() - 2.5).abs() < 1e-12);
    }
}
