//! Shortfall-aware interval widening for degraded distributed merges.
//!
//! When a distributed pane merges without a dead shard's digest, the
//! coordinator knows roughly how much mass went missing (estimated from
//! the live shards, which are exchangeable under hash routing) but has no
//! sampled values for it. Folding that shortfall into the per-stratum
//! populations makes the existing estimators do the honest thing on both
//! axes at once: the Horvitz–Thompson weight `C_i / Y_i` extrapolates the
//! point estimate over the unseen mass, and the finite-population variance
//! `C_i (C_i − Y_i) s_i² / Y_i` (Equation 6) grows with the now-larger
//! `C_i`, so confidence intervals *widen* instead of silently narrowing
//! around a shard-sized hole.

use crate::stats::StratumStats;

/// Folds `lost` unseen items into `stats` by inflating each stratum's
/// population `C_i` in proportion to its observed share, so downstream
/// sum/mean estimates extrapolate over the lost mass and their error
/// bounds widen accordingly.
///
/// The apportioning is deterministic largest-remainder: every item of
/// `lost` lands in exactly one stratum, with the leftover after the
/// proportional floor going to the most populous stratum (ties to the
/// lowest id, which is first in the canonically ordered slice). When
/// `stats` is empty or records no population there is nothing to attribute
/// the loss to, and the statistics are left untouched — the caller still
/// marks the window degraded.
///
/// # Example
///
/// ```
/// use sa_estimate::{estimate_sum, widen_for_shortfall, StratumStats, Welford};
/// use sa_types::{Confidence, StratumId};
///
/// let mut acc = Welford::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(v);
/// }
/// let mut stats = vec![StratumStats::from_parts(StratumId(0), 8, acc)];
/// let healthy = estimate_sum(&stats, Confidence::P95);
/// widen_for_shortfall(&mut stats, 8); // a same-sized shard went missing
/// let degraded = estimate_sum(&stats, Confidence::P95);
/// assert!(degraded.value > healthy.value); // extrapolated over the loss
/// assert!(degraded.bound.margin() > healthy.bound.margin()); // and wider
/// ```
pub fn widen_for_shortfall(stats: &mut [StratumStats], lost: u64) {
    if lost == 0 {
        return;
    }
    let total: u64 = stats.iter().map(|s| s.population).sum();
    if total == 0 {
        return;
    }
    let mut assigned = 0u64;
    for s in stats.iter_mut() {
        // `population × lost` stays within u128; the quotient is ≤ lost.
        let extra = ((s.population as u128 * lost as u128) / total as u128) as u64;
        s.population += extra;
        assigned += extra;
    }
    if let Some(widest) = stats.iter_mut().max_by_key(|s| s.population) {
        widest.population += lost - assigned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::estimate_sum;
    use crate::welford::Welford;
    use sa_types::{Confidence, StratumId};

    fn stratum(id: u32, population: u64, values: &[f64]) -> StratumStats {
        let mut acc = Welford::new();
        for &v in values {
            acc.push(v);
        }
        StratumStats::from_parts(StratumId(id), population, acc)
    }

    #[test]
    fn shortfall_is_conserved_and_proportional() {
        let mut stats = vec![
            stratum(0, 300, &[1.0, 2.0]),
            stratum(1, 100, &[5.0]),
            stratum(2, 0, &[]),
        ];
        widen_for_shortfall(&mut stats, 101);
        let total: u64 = stats.iter().map(|s| s.population).sum();
        assert_eq!(total, 300 + 100 + 101);
        // Proportional floor: 300/400 of 101 is 75, 100/400 is 25; the
        // leftover item lands on the most populous stratum.
        assert_eq!(stats[0].population, 300 + 75 + 1);
        assert_eq!(stats[1].population, 100 + 25);
        assert_eq!(stats[2].population, 0);
    }

    #[test]
    fn widening_scales_estimate_and_margin() {
        let mut stats = vec![stratum(0, 100, &[9.0, 10.0, 11.0, 10.0])];
        let healthy = estimate_sum(&stats, Confidence::P95);
        widen_for_shortfall(&mut stats, 100);
        let degraded = estimate_sum(&stats, Confidence::P95);
        // Point estimate roughly doubles (HT extrapolation over lost mass)
        // and the interval widens rather than narrowing.
        assert!((degraded.value / healthy.value - 2.0).abs() < 1e-9);
        assert!(degraded.bound.margin() > healthy.bound.margin());
    }

    #[test]
    fn widening_makes_an_exact_stratum_uncertain() {
        // A fully-sampled stratum (C == Y) has zero variance; inflating C
        // past Y must reopen the interval.
        let mut stats = vec![stratum(0, 4, &[1.0, 2.0, 3.0, 4.0])];
        assert_eq!(estimate_sum(&stats, Confidence::P95).bound.margin(), 0.0);
        widen_for_shortfall(&mut stats, 4);
        assert!(estimate_sum(&stats, Confidence::P95).bound.margin() > 0.0);
    }

    #[test]
    fn degenerate_inputs_are_untouched() {
        let mut empty: Vec<StratumStats> = Vec::new();
        widen_for_shortfall(&mut empty, 50);
        assert!(empty.is_empty());

        let mut zeroed = vec![stratum(0, 0, &[])];
        widen_for_shortfall(&mut zeroed, 50);
        assert_eq!(zeroed[0].population, 0);

        let mut stats = vec![stratum(0, 10, &[1.0])];
        widen_for_shortfall(&mut stats, 0);
        assert_eq!(stats[0].population, 10);
    }
}
