//! Per-stratum sufficient statistics: the bridge between samples and the
//! variance estimators of §3.3.

use crate::welford::Welford;
use sa_types::wire::put_varint;
use sa_types::{
    SaError, StratifiedSample, StratumId, StratumSample, WireDecode, WireEncode, WireReader,
};
use serde::{Deserialize, Serialize};

/// The sufficient statistics of one stratum's sample: the arrival counter
/// `C_i`, and a [`Welford`] accumulator over the `Y_i` sampled values giving
/// `Ī_i` and `s_i²` (Equation 7).
///
/// Everything the sum/mean estimators (Equations 2–9) need is here, so
/// engines can ship these small structs between panes and workers instead
/// of the sampled items themselves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratumStats {
    /// Which sub-stream the statistics describe.
    pub stratum: StratumId,
    /// `C_i`: number of items that arrived from this stratum.
    pub population: u64,
    /// Accumulator over the sampled values (`Y_i`, `Ī_i`, `s_i²`).
    pub acc: Welford,
}

impl StratumStats {
    /// Builds statistics from a weighted stratum sample, projecting each
    /// sampled item to the numeric value the query aggregates.
    ///
    /// # Example
    ///
    /// ```
    /// use sa_estimate::StratumStats;
    /// use sa_types::{StratumSample, StratumId};
    ///
    /// let s = StratumSample::new(StratumId(0), vec![1.0, 3.0], 10, 2);
    /// let stats = StratumStats::from_sample(&s, |v| *v);
    /// assert_eq!(stats.sample_size(), 2);
    /// assert_eq!(stats.population, 10);
    /// assert!((stats.acc.mean() - 2.0).abs() < 1e-12);
    /// ```
    pub fn from_sample<V, F: FnMut(&V) -> f64>(
        sample: &StratumSample<V>,
        mut proj: F,
    ) -> StratumStats {
        let mut acc = Welford::new();
        for item in &sample.items {
            acc.push(proj(item));
        }
        StratumStats {
            stratum: sample.stratum,
            population: sample.population,
            acc,
        }
    }

    /// Creates statistics directly from counters (used by engines that keep
    /// Welford accumulators inline instead of materializing samples).
    pub fn from_parts(stratum: StratumId, population: u64, acc: Welford) -> StratumStats {
        StratumStats {
            stratum,
            population,
            acc,
        }
    }

    /// `Y_i`: the realized sample size.
    #[inline]
    pub fn sample_size(&self) -> u64 {
        self.acc.count()
    }

    /// The stratum weight `W_i` of Equation 1 in its Horvitz–Thompson form
    /// `C_i / Y_i` (1 when the whole stratum was kept, 0 when nothing was).
    #[inline]
    pub fn weight(&self) -> f64 {
        let yi = self.acc.count();
        if self.population == 0 {
            1.0
        } else if yi == 0 {
            0.0
        } else if self.population > yi {
            self.population as f64 / yi as f64
        } else {
            1.0
        }
    }

    /// The estimated stratum total `SUM_i = (Σ I_ij) × W_i` (Equation 2).
    #[inline]
    pub fn estimated_sum(&self) -> f64 {
        self.acc.sum() * self.weight()
    }

    /// The finite-population-corrected variance contribution of this
    /// stratum to `V̂ar(SUM)` (one term of Equation 6):
    /// `C_i (C_i − Y_i) s_i² / Y_i`.
    #[inline]
    pub fn sum_variance(&self) -> f64 {
        let yi = self.acc.count();
        if yi == 0 {
            return 0.0;
        }
        let ci = self.population as f64;
        let fpc = ci * (ci - yi as f64);
        (fpc * self.acc.sample_variance() / yi as f64).max(0.0)
    }

    /// The variance of this stratum's mean estimate:
    /// `(s_i² / Y_i) × (C_i − Y_i) / C_i` (the per-stratum factor of
    /// Equation 9).
    #[inline]
    pub fn mean_variance(&self) -> f64 {
        let yi = self.acc.count();
        if yi == 0 || self.population == 0 {
            return 0.0;
        }
        let ci = self.population as f64;
        let fpc = (ci - yi as f64) / ci;
        (self.acc.sample_variance() / yi as f64 * fpc).max(0.0)
    }

    /// Merges statistics of the same stratum observed elsewhere (another
    /// worker or pane of the same interval).
    pub fn merge(&mut self, other: &StratumStats) {
        debug_assert_eq!(self.stratum, other.stratum);
        self.population += other.population;
        self.acc.merge(&other.acc);
    }
}

impl WireEncode for StratumStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.stratum.encode(out);
        put_varint(out, self.population);
        self.acc.encode(out);
    }
}

impl WireDecode for StratumStats {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SaError> {
        let stratum = StratumId::decode(r)?;
        let population = r.read_varint()?;
        let acc = Welford::decode(r)?;
        // More sampled values than arrivals means a forged weight below 1.
        if acc.count() > population {
            return Err(SaError::Wire(format!(
                "stratum sample size {} exceeds population {population}",
                acc.count()
            )));
        }
        Ok(StratumStats {
            stratum,
            population,
            acc,
        })
    }
}

/// Projects a whole [`StratifiedSample`] to per-stratum statistics, in
/// stratum order.
pub fn stats_of<V, F: FnMut(&V) -> f64>(
    sample: &StratifiedSample<V>,
    mut proj: F,
) -> Vec<StratumStats> {
    sample
        .iter()
        .map(|s| StratumStats::from_sample(s, &mut proj))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pop: u64, values: &[f64]) -> StratumStats {
        let acc: Welford = values.iter().copied().collect();
        StratumStats::from_parts(StratumId(0), pop, acc)
    }

    #[test]
    fn weight_matches_equation_one() {
        assert_eq!(stats(10, &[1.0, 2.0]).weight(), 5.0);
        assert_eq!(stats(2, &[1.0, 2.0]).weight(), 1.0);
        assert_eq!(stats(0, &[]).weight(), 1.0);
        assert_eq!(stats(5, &[]).weight(), 0.0);
    }

    #[test]
    fn estimated_sum_scales_by_weight() {
        // 3 sampled values summing to 6, representing 9 items → 18.
        let s = stats(9, &[1.0, 2.0, 3.0]);
        assert!((s.estimated_sum() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn fully_sampled_stratum_has_zero_variance() {
        let s = stats(3, &[1.0, 2.0, 3.0]);
        assert_eq!(s.sum_variance(), 0.0);
        assert_eq!(s.mean_variance(), 0.0);
    }

    #[test]
    fn variance_terms_match_hand_computation() {
        // Ci = 10, Yi = 4, values 1..4: s² = 5/3.
        let s = stats(10, &[1.0, 2.0, 3.0, 4.0]);
        let s2 = 5.0 / 3.0;
        let expected_sum_var = 10.0 * (10.0 - 4.0) * s2 / 4.0;
        assert!((s.sum_variance() - expected_sum_var).abs() < 1e-9);
        let expected_mean_var = s2 / 4.0 * (10.0 - 4.0) / 10.0;
        assert!((s.mean_variance() - expected_mean_var).abs() < 1e-12);
    }

    #[test]
    fn single_item_sample_claims_no_dispersion() {
        let s = stats(100, &[42.0]);
        assert_eq!(s.sum_variance(), 0.0);
        assert_eq!(s.mean_variance(), 0.0);
        // But the point estimate still reconstructs the population.
        assert!((s.estimated_sum() - 4_200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_panes() {
        let mut a = stats(10, &[1.0, 2.0]);
        let b = stats(20, &[3.0, 4.0, 5.0]);
        a.merge(&b);
        assert_eq!(a.population, 30);
        assert_eq!(a.sample_size(), 5);
        assert!((a.acc.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_roundtrip_and_merge_through_wire() {
        let a = stats(10, &[1.0, 2.0]);
        let b = stats(20, &[3.0, 4.0, 5.0]);
        let mut orig = a;
        orig.merge(&b);
        let mut wire = StratumStats::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        wire.merge(&StratumStats::from_wire_bytes(&b.to_wire_bytes()).unwrap());
        assert_eq!(wire, orig);
    }

    #[test]
    fn forged_sample_size_rejected() {
        let s = stats(1, &[1.0, 2.0, 3.0]); // 3 sampled of a population of 1
        assert!(matches!(
            StratumStats::from_wire_bytes(&s.to_wire_bytes()),
            Err(sa_types::SaError::Wire(_))
        ));
    }

    #[test]
    fn stats_of_projects_all_strata() {
        use sa_types::StratumSample;
        let sample: StratifiedSample<(f64, f64)> = [
            StratumSample::new(StratumId(0), vec![(1.0, 9.0)], 4, 1),
            StratumSample::new(StratumId(1), vec![(2.0, 8.0)], 2, 1),
        ]
        .into_iter()
        .collect();
        let by_first = stats_of(&sample, |v| v.0);
        assert_eq!(by_first.len(), 2);
        assert!((by_first[0].acc.mean() - 1.0).abs() < 1e-12);
        let by_second = stats_of(&sample, |v| v.1);
        assert!((by_second[1].acc.mean() - 8.0).abs() < 1e-12);
    }
}
