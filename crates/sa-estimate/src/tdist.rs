//! Small-sample refinement of the error bounds: Student-t multipliers.
//!
//! The paper derives bounds from the "68-95-99.7" rule, i.e. a normal
//! approximation with z ∈ {1, 2, 3} (§3.3). That is accurate when every
//! stratum holds plenty of sampled items, but a reservoir of a handful of
//! items makes the variance estimate itself noisy and the normal bound
//! optimistic. This module provides the standard correction: widen the
//! multiplier to the Student-t quantile with `Y_i − 1` degrees of freedom,
//! computed from the normal quantile via Hill's asymptotic expansion
//! (Hill, 1970). The correction converges to the paper's rule as samples
//! grow, so it is a strict refinement, not a behavioural change.

use crate::stats::StratumStats;
use sa_types::Confidence;

/// The Student-t multiplier matching the coverage of `confidence`'s normal
/// multiplier, for `df` degrees of freedom.
///
/// Uses Hill's expansion `t ≈ z + (z³+z)/4ν + (5z⁵+16z³+3z)/96ν² + …`,
/// which is accurate to a few per mil for `ν ≥ 3` and exact in the limit.
/// For `df = 0` (a single observation — no variance information at all)
/// the multiplier is infinite in theory; we return a large sentinel factor
/// instead so margins stay finite but clearly dominated by the better
/// strata.
///
/// # Example
///
/// ```
/// use sa_estimate::t_multiplier;
/// use sa_types::Confidence;
///
/// // Small samples widen the bound…
/// assert!(t_multiplier(Confidence::P95, 4) > Confidence::P95.z());
/// // …large samples recover the paper's 68-95-99.7 rule.
/// let big = t_multiplier(Confidence::P95, 10_000);
/// assert!((big - Confidence::P95.z()).abs() < 1e-3);
/// ```
pub fn t_multiplier(confidence: Confidence, df: u64) -> f64 {
    let z = confidence.z();
    if df == 0 {
        return z * 10.0;
    }
    let v = df as f64;
    let z3 = z * z * z;
    let z5 = z3 * z * z;
    let correction1 = (z3 + z) / (4.0 * v);
    let correction2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v);
    let correction3 = (3.0 * z5 * z * z + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * v * v * v);
    z + correction1 + correction2 + correction3
}

/// A conservative effective multiplier for a stratified estimate: the
/// t-multiplier at the *smallest* per-stratum degrees of freedom among
/// covered strata (the stratum least able to estimate its own variance
/// dominates the bound's optimism).
///
/// Returns the plain normal multiplier when every covered stratum has at
/// least `LARGE_SAMPLE` items, so well-fed pipelines pay nothing.
pub fn stratified_t_multiplier(stats: &[StratumStats], confidence: Confidence) -> f64 {
    /// Sample size beyond which the normal rule is indistinguishable from t.
    const LARGE_SAMPLE: u64 = 120;
    let min_df = stats
        .iter()
        .filter(|s| s.sample_size() > 0)
        .map(|s| s.sample_size() - 1)
        .min();
    match min_df {
        None => confidence.z(),
        Some(df) if df >= LARGE_SAMPLE => confidence.z(),
        Some(df) => t_multiplier(confidence, df),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::welford::Welford;
    use sa_types::StratumId;

    #[test]
    fn t_exceeds_z_for_small_samples() {
        for df in 1..30 {
            for conf in [Confidence::P68, Confidence::P95, Confidence::P997] {
                assert!(t_multiplier(conf, df) > conf.z(), "df={df}, conf={conf}");
            }
        }
    }

    #[test]
    fn t_is_monotone_decreasing_in_df() {
        let mut last = f64::INFINITY;
        for df in 1..200 {
            let t = t_multiplier(Confidence::P95, df);
            assert!(t < last, "df={df}: {t} !< {last}");
            last = t;
        }
    }

    #[test]
    fn t_converges_to_z() {
        for conf in [Confidence::P68, Confidence::P95, Confidence::P997] {
            let t = t_multiplier(conf, 100_000);
            assert!((t - conf.z()).abs() < 1e-4, "{conf}: {t}");
        }
    }

    #[test]
    fn t_matches_known_quantiles_approximately() {
        // Student-t 84.135% quantile (matching z = 1, the 68% two-sided
        // band): for ν = 4 the exact value is ≈ 1.1416 (computed by
        // numerical inversion of the t CDF).
        let t = t_multiplier(Confidence::P68, 4);
        assert!((t - 1.1416).abs() < 0.01, "t = {t}");
        // For z = 2 (95.45% two-sided), ν = 10: exact ≈ 2.2837.
        let t2 = t_multiplier(Confidence::P95, 10);
        assert!((t2 - 2.2837).abs() < 0.02, "t = {t2}");
        // And ν = 4 at z = 2: exact ≈ 2.8693 (expansion is a few per mil
        // off this far into the tail at tiny ν).
        let t3 = t_multiplier(Confidence::P95, 4);
        assert!((t3 - 2.8693).abs() < 0.08, "t = {t3}");
    }

    #[test]
    fn zero_df_is_finite_but_huge() {
        let t = t_multiplier(Confidence::P95, 0);
        assert!(t.is_finite());
        assert!(t >= 10.0);
    }

    fn stats(pop: u64, n: usize) -> StratumStats {
        let acc: Welford = (0..n).map(|i| i as f64).collect();
        StratumStats::from_parts(StratumId(0), pop, acc)
    }

    #[test]
    fn stratified_multiplier_keyed_to_weakest_stratum() {
        let mixed = vec![stats(1_000, 500), stats(1_000, 5)];
        let m = stratified_t_multiplier(&mixed, Confidence::P95);
        assert!((m - t_multiplier(Confidence::P95, 4)).abs() < 1e-12);
    }

    #[test]
    fn stratified_multiplier_is_z_for_large_samples() {
        let big = vec![stats(10_000, 5_000), stats(10_000, 400)];
        assert_eq!(
            stratified_t_multiplier(&big, Confidence::P95),
            Confidence::P95.z()
        );
        assert_eq!(
            stratified_t_multiplier(&[], Confidence::P95),
            Confidence::P95.z()
        );
    }
}
