//! Error estimation for approximate linear queries — §3.3 of the
//! StreamApprox paper, implemented from the random-sampling theory it cites.
//!
//! Given a weighted stratified sample (from OASRS or any sampler in
//! `sa-sampling`), this crate produces `output ± error bound` answers:
//!
//! * [`estimate_sum`] — Equations 2, 3 and 6: weighted total with the
//!   stratified finite-population variance.
//! * [`estimate_mean`] — Equations 4, 8 and 9: population-weighted mean.
//! * [`estimate_count`] / [`estimate_histogram`] — linear queries over
//!   indicator projections.
//! * [`estimate_sum_by_stratum`] / [`estimate_mean_by_stratum`] — the
//!   per-sub-stream case-study queries (§6.2, §6.3).
//! * [`srs_sum`], [`srs_mean`], [`srs_sum_by_stratum`],
//!   [`srs_mean_by_stratum`] — counterparts for the unstratified SRS
//!   baseline, including its overlooked-sub-stream failure mode.
//! * [`accuracy_loss`] — the evaluation's `|approx − exact|/exact` metric.
//! * [`AdaptiveController`] / [`required_inflation`] — the feedback loop
//!   that re-tunes the sample size to meet an accuracy target (§4.2.1, §7).
//!
//! Error bounds use the "68-95-99.7" rule (z · √variance) exactly as the
//! paper does. A deliberate consequence inherited from the paper: a stratum
//! with a single sampled item reports zero within-stratum dispersion
//! (Equation 7 needs `Y_i ≥ 2`), so bounds are optimistic for starved
//! strata; growing the reservoir fixes both the bound and the estimate.
//!
//! # Example
//!
//! ```
//! use sa_sampling::{OasrsSampler, SizingPolicy};
//! use sa_estimate::{stats_of, estimate_mean};
//! use sa_types::{Confidence, StratumId};
//!
//! let mut sampler = OasrsSampler::new(SizingPolicy::PerStratum(64), 1);
//! for i in 0..10_000u32 {
//!     sampler.observe(StratumId(i % 2), f64::from(i % 100));
//! }
//! let sample = sampler.finish_interval();
//! let stats = stats_of(&sample, |v| *v);
//! let answer = estimate_mean(&stats, Confidence::P95);
//! // True mean of i % 100 over this stream is 49.5.
//! assert!((answer.value - 49.5).abs() < 15.0);
//! assert!(answer.bound.margin() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
mod linear;
mod shortfall;
mod srs;
mod stats;
mod tdist;
mod welford;

pub use accuracy::{accuracy_loss, mean_accuracy_loss, required_inflation, AdaptiveController};
pub use linear::{
    estimate_count, estimate_histogram, estimate_mean, estimate_mean_by_stratum, estimate_sum,
    estimate_sum_by_stratum,
};
pub use shortfall::widen_for_shortfall;
pub use srs::{srs_mean, srs_mean_by_stratum, srs_sum, srs_sum_by_stratum, SrsSample};
pub use stats::{stats_of, StratumStats};
pub use tdist::{stratified_t_multiplier, t_multiplier};
pub use welford::Welford;
