//! Estimators for the *unstratified* SRS baseline.
//!
//! Spark-based SRS (paper §4.1.1) draws one simple random sample from the
//! whole batch, losing the per-sub-stream bookkeeping OASRS keeps. Queries
//! over sub-populations ("domains" in survey-sampling terms, e.g. the
//! per-protocol traffic totals of §6.2) must then be answered with
//! Horvitz–Thompson expansion under the single global inclusion probability
//! `y/n` — which is exactly why SRS "loses the capability of considering
//! each sub-stream fairly" (§5.2): a rare domain may simply vanish from the
//! sample.

use crate::welford::Welford;
use sa_types::{ApproxResult, Confidence, ErrorBound, StratumId};
use std::collections::BTreeMap;

/// An unstratified simple random sample of `y` items drawn from a batch of
/// `n`, carrying each item's stratum tag only as payload (SRS did not use it
/// while sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct SrsSample<V> {
    items: Vec<(StratumId, V)>,
    population: u64,
}

impl<V> SrsSample<V> {
    /// Wraps a drawn sample together with the batch size it came from.
    ///
    /// # Panics
    ///
    /// Panics if more items were selected than the population contains.
    pub fn new(items: Vec<(StratumId, V)>, population: u64) -> Self {
        assert!(
            items.len() as u64 <= population,
            "sample larger than population"
        );
        SrsSample { items, population }
    }

    /// The sampled `(stratum, value)` pairs.
    pub fn items(&self) -> &[(StratumId, V)] {
        &self.items
    }

    /// `n`: the batch size the sample was drawn from.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// `y`: the realized sample size.
    pub fn sample_size(&self) -> u64 {
        self.items.len() as u64
    }
}

/// Estimates the total over the whole batch: `(n/y)·Σ v` with the standard
/// SRS variance `n²(1−y/n)s²/y`.
///
/// # Example
///
/// ```
/// use sa_estimate::{SrsSample, srs_sum};
/// use sa_types::{Confidence, StratumId};
///
/// let s = SrsSample::new(vec![(StratumId(0), 2.0), (StratumId(0), 4.0)], 4);
/// let r = srs_sum(&s, |v| *v, Confidence::P95);
/// assert!((r.value - 12.0).abs() < 1e-12); // (4/2)·6
/// ```
pub fn srs_sum<V, F: FnMut(&V) -> f64>(
    sample: &SrsSample<V>,
    mut proj: F,
    confidence: Confidence,
) -> ApproxResult {
    let y = sample.sample_size();
    let n = sample.population;
    if y == 0 {
        return ApproxResult::new(0.0, ErrorBound::exact(), 0, n);
    }
    let acc: Welford = sample.items.iter().map(|(_, v)| proj(v)).collect();
    let nf = n as f64;
    let yf = y as f64;
    let value = nf / yf * acc.sum();
    let variance = (nf * nf * (1.0 - yf / nf) * acc.sample_variance() / yf).max(0.0);
    ApproxResult::new(
        value,
        ErrorBound::new(confidence.z() * variance.sqrt(), confidence),
        y,
        n,
    )
}

/// Estimates the mean over the whole batch: the sample mean with variance
/// `(1−y/n)s²/y`.
pub fn srs_mean<V, F: FnMut(&V) -> f64>(
    sample: &SrsSample<V>,
    mut proj: F,
    confidence: Confidence,
) -> ApproxResult {
    let y = sample.sample_size();
    let n = sample.population;
    if y == 0 {
        return ApproxResult::new(0.0, ErrorBound::exact(), 0, n);
    }
    let acc: Welford = sample.items.iter().map(|(_, v)| proj(v)).collect();
    let variance = ((1.0 - y as f64 / n as f64) * acc.sample_variance() / y as f64).max(0.0);
    ApproxResult::new(
        acc.mean(),
        ErrorBound::new(confidence.z() * variance.sqrt(), confidence),
        y,
        n,
    )
}

/// Estimates per-stratum totals from an unstratified sample (domain
/// estimation): for stratum `k`, `(n/y)·Σ_{sampled ∈ k} v`, with the
/// domain-indicator variance. Strata absent from the sample are absent from
/// the output — the overlooked-sub-stream failure mode of SRS.
pub fn srs_sum_by_stratum<V, F: FnMut(&V) -> f64>(
    sample: &SrsSample<V>,
    mut proj: F,
    confidence: Confidence,
) -> Vec<(StratumId, ApproxResult)> {
    let y = sample.sample_size();
    let n = sample.population;
    if y == 0 {
        return Vec::new();
    }
    let strata: BTreeMap<StratumId, ()> = sample.items.iter().map(|(k, _)| (*k, ())).collect();
    let nf = n as f64;
    let yf = y as f64;
    strata
        .into_keys()
        .map(|k| {
            // Domain variable z_j = v_j · 1{stratum_j = k} over the whole
            // sample (zeros included) — the standard SRS domain-total
            // estimator.
            let acc: Welford = sample
                .items
                .iter()
                .map(|(s, v)| if *s == k { proj(v) } else { 0.0 })
                .collect();
            let value = nf / yf * acc.sum();
            let variance = (nf * nf * (1.0 - yf / nf) * acc.sample_variance() / yf).max(0.0);
            let domain_size = sample.items.iter().filter(|(s, _)| *s == k).count() as u64;
            (
                k,
                ApproxResult::new(
                    value,
                    ErrorBound::new(confidence.z() * variance.sqrt(), confidence),
                    domain_size,
                    n,
                ),
            )
        })
        .collect()
}

/// Estimates per-stratum means from an unstratified sample: the ratio
/// (self-weighting) estimator — the mean of the sampled items that happen to
/// fall in the stratum, with the conditional-SRS variance approximation.
pub fn srs_mean_by_stratum<V, F: FnMut(&V) -> f64>(
    sample: &SrsSample<V>,
    mut proj: F,
    confidence: Confidence,
) -> Vec<(StratumId, ApproxResult)> {
    let n = sample.population;
    let mut groups: BTreeMap<StratumId, Welford> = BTreeMap::new();
    for (k, v) in &sample.items {
        groups.entry(*k).or_default().push(proj(v));
    }
    let f = sample.sample_size() as f64 / n.max(1) as f64;
    groups
        .into_iter()
        .map(|(k, acc)| {
            let yk = acc.count();
            let variance = if yk == 0 {
                0.0
            } else {
                ((1.0 - f) * acc.sample_variance() / yk as f64).max(0.0)
            };
            (
                k,
                ApproxResult::new(
                    acc.mean(),
                    ErrorBound::new(confidence.z() * variance.sqrt(), confidence),
                    yk,
                    n,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pairs: &[(u32, f64)], n: u64) -> SrsSample<f64> {
        SrsSample::new(pairs.iter().map(|&(k, v)| (StratumId(k), v)).collect(), n)
    }

    #[test]
    fn full_sample_sum_is_exact() {
        let s = sample(&[(0, 1.0), (0, 2.0), (1, 3.0)], 3);
        let r = srs_sum(&s, |v| *v, Confidence::P95);
        assert!((r.value - 6.0).abs() < 1e-12);
        assert_eq!(r.bound.margin(), 0.0);
    }

    #[test]
    fn sum_expands_by_inverse_fraction() {
        let s = sample(&[(0, 5.0), (0, 7.0)], 10);
        let r = srs_sum(&s, |v| *v, Confidence::P95);
        assert!((r.value - 60.0).abs() < 1e-12);
        assert!(r.bound.margin() > 0.0);
    }

    #[test]
    fn mean_is_sample_mean() {
        let s = sample(&[(0, 2.0), (1, 4.0)], 100);
        let r = srs_mean(&s, |v| *v, Confidence::P95);
        assert!((r.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_degrades_gracefully() {
        let s = sample(&[], 50);
        assert_eq!(srs_sum(&s, |v: &f64| *v, Confidence::P95).value, 0.0);
        assert_eq!(srs_mean(&s, |v: &f64| *v, Confidence::P95).value, 0.0);
        assert!(srs_sum_by_stratum(&s, |v: &f64| *v, Confidence::P95).is_empty());
    }

    #[test]
    fn domain_sums_partition_the_total() {
        let s = sample(&[(0, 1.0), (1, 2.0), (0, 3.0), (2, 4.0)], 40);
        let total = srs_sum(&s, |v| *v, Confidence::P95).value;
        let by: f64 = srs_sum_by_stratum(&s, |v| *v, Confidence::P95)
            .iter()
            .map(|(_, r)| r.value)
            .sum();
        assert!((total - by).abs() < 1e-9);
    }

    #[test]
    fn missing_stratum_is_silently_absent() {
        // The failure mode the paper's Figure 5(a) demonstrates: stratum 9
        // existed in the population but was never sampled.
        let s = sample(&[(0, 1.0)], 1_000);
        let by = srs_sum_by_stratum(&s, |v| *v, Confidence::P95);
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].0, StratumId(0));
    }

    #[test]
    fn per_stratum_mean_is_conditional_mean() {
        let s = sample(&[(0, 2.0), (0, 6.0), (1, 10.0)], 30);
        let by = srs_mean_by_stratum(&s, |v| *v, Confidence::P95);
        assert!((by[0].1.value - 4.0).abs() < 1e-12);
        assert!((by[1].1.value - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample larger than population")]
    fn oversized_sample_rejected() {
        let _ = sample(&[(0, 1.0), (0, 2.0)], 1);
    }
}
