//! Accuracy metrics and adaptive sample-size control.
//!
//! The paper measures **accuracy loss** as `|approx − exact| / exact`
//! (§6.1) and closes the loop with "an adaptive feedback mechanism ... to
//! increase the sample size in the sampling module" whenever the reported
//! error bound exceeds the target (§4.2.1). Both live here.

use crate::stats::StratumStats;
use serde::{Deserialize, Serialize};

/// The paper's accuracy-loss metric: `|approx − exact| / |exact|` (§6.1).
///
/// Returns 0 when both values are exactly zero, and `f64::INFINITY` when
/// only the exact value is zero (any deviation from a zero ground truth is
/// infinitely wrong in relative terms).
///
/// # Example
///
/// ```
/// use sa_estimate::accuracy_loss;
/// assert!((accuracy_loss(101.0, 100.0) - 0.01).abs() < 1e-12);
/// assert_eq!(accuracy_loss(0.0, 0.0), 0.0);
/// ```
pub fn accuracy_loss(approx: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (approx - exact).abs() / exact.abs()
    }
}

/// Mean accuracy loss over paired observations, ignoring pairs whose exact
/// value is zero (matching how the evaluation averages over windows).
pub fn mean_accuracy_loss(pairs: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for &(approx, exact) in pairs {
        if exact != 0.0 {
            total += accuracy_loss(approx, exact);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// The adaptive feedback controller of §4.2.1: grows the sample size when
/// the observed relative error exceeds the target, and (conservatively)
/// shrinks it when the error is comfortably below target, reclaiming
/// resources. AIMD-style, bounded on both ends.
///
/// # Example
///
/// ```
/// use sa_estimate::AdaptiveController;
///
/// let mut ctl = AdaptiveController::new(0.01, 100, 100_000);
/// // Error way above target → capacity grows multiplicatively.
/// let bigger = ctl.update(1_000, 0.05);
/// assert!(bigger > 1_000);
/// // Error far below target → capacity decays gently.
/// let smaller = ctl.update(bigger, 0.0001);
/// assert!(smaller < bigger);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveController {
    target_relative_error: f64,
    min_capacity: usize,
    max_capacity: usize,
    grow_factor: f64,
    shrink_factor: f64,
    /// Dead band around the target within which the capacity is left alone,
    /// as a fraction of the target (hysteresis against oscillation).
    slack: f64,
}

impl AdaptiveController {
    /// Creates a controller targeting the given relative error, with
    /// capacity clamped to `[min_capacity, max_capacity]`.
    ///
    /// # Panics
    ///
    /// Panics if the target is not in `(0, 1)`, `min_capacity` is zero, or
    /// the bounds are inverted.
    pub fn new(target_relative_error: f64, min_capacity: usize, max_capacity: usize) -> Self {
        assert!(
            target_relative_error > 0.0 && target_relative_error < 1.0,
            "target relative error must be in (0, 1)"
        );
        assert!(min_capacity > 0, "minimum capacity must be positive");
        assert!(
            min_capacity <= max_capacity,
            "minimum capacity exceeds maximum"
        );
        AdaptiveController {
            target_relative_error,
            min_capacity,
            max_capacity,
            grow_factor: 1.5,
            shrink_factor: 0.9,
            slack: 0.5,
        }
    }

    /// The target relative error.
    pub fn target(&self) -> f64 {
        self.target_relative_error
    }

    /// Computes the next per-interval capacity given the current capacity
    /// and the relative error observed in the interval that just ended.
    ///
    /// The error margin of a mean estimate scales as `1/√Y`, so on a
    /// violation the controller jumps straight to the analytically implied
    /// capacity `Y·(err/target)²` (clamped), rather than creeping up over
    /// many windows; within the dead band it holds; far below target it
    /// decays by `shrink_factor`.
    pub fn update(&mut self, current_capacity: usize, observed_relative_error: f64) -> usize {
        let target = self.target_relative_error;
        let next = if observed_relative_error > target {
            // Analytic jump: margin ∝ 1/√Y ⇒ Y' = Y (err/target)².
            let ratio = (observed_relative_error / target).powi(2);
            let jump = (current_capacity as f64 * ratio).ceil() as usize;
            jump.max((current_capacity as f64 * self.grow_factor).ceil() as usize)
        } else if observed_relative_error < target * self.slack {
            (current_capacity as f64 * self.shrink_factor).floor() as usize
        } else {
            current_capacity
        };
        next.clamp(self.min_capacity, self.max_capacity)
    }
}

/// Solves for the uniform sample-size inflation `k ≥ 1` needed to bring the
/// mean estimate's margin (Equation 9 at confidence `z`) down to
/// `target_margin`, assuming per-stratum variances stay as observed.
/// Returns 1.0 when the current sample already meets the target, and
/// `None` when no finite inflation can reach it (the margin floor set by
/// the finite-population correction is above the target).
///
/// This is the analytic half of the paper's §7 accuracy-budget discussion:
/// "we can define the sample size for each sub-stream based on a desired
/// width of the confidence interval using Equation 9 and the 68-95-99.7
/// rule".
pub fn required_inflation(stats: &[StratumStats], target_margin: f64, z: f64) -> Option<f64> {
    assert!(target_margin > 0.0, "target margin must be positive");
    assert!(z > 0.0, "z must be positive");
    let total: f64 = stats.iter().map(|s| s.population as f64).sum();
    if total == 0.0 {
        return Some(1.0);
    }
    // Var(k) = Σ ω_i² s_i² (1/(k·Y_i) − 1/C_i); monotone decreasing in k with
    // asymptote Var(∞) = −Σ ω_i² s_i²/C_i ≤ 0, so a solution always exists
    // unless every stratum is already exhausted.
    let variance_at = |k: f64| -> f64 {
        stats
            .iter()
            .filter(|s| s.sample_size() > 0)
            .map(|s| {
                let omega = s.population as f64 / total;
                let yi = s.sample_size() as f64;
                let ci = s.population as f64;
                let scaled_y = (k * yi).min(ci);
                omega * omega * s.acc.sample_variance() * (1.0 / scaled_y - 1.0 / ci)
            })
            .sum::<f64>()
            .max(0.0)
    };
    let target_var = (target_margin / z).powi(2);
    if variance_at(1.0) <= target_var {
        return Some(1.0);
    }
    // The variance floor is 0 (every stratum fully sampled); any positive
    // target is reachable, but cap the search to a sane bound.
    let mut lo = 1.0;
    let mut hi = 2.0;
    while variance_at(hi) > target_var {
        hi *= 2.0;
        if hi > 1e12 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if variance_at(mid) > target_var {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::welford::Welford;
    use sa_types::StratumId;

    #[test]
    fn accuracy_loss_matches_definition() {
        assert!((accuracy_loss(95.0, 100.0) - 0.05).abs() < 1e-12);
        assert!((accuracy_loss(105.0, 100.0) - 0.05).abs() < 1e-12);
        assert_eq!(accuracy_loss(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn mean_accuracy_loss_skips_zero_ground_truth() {
        let pairs = [(1.0, 0.0), (110.0, 100.0), (95.0, 100.0)];
        assert!((mean_accuracy_loss(&pairs) - 0.075).abs() < 1e-12);
        assert_eq!(mean_accuracy_loss(&[]), 0.0);
    }

    #[test]
    fn controller_grows_on_violation() {
        let mut ctl = AdaptiveController::new(0.01, 10, 1_000_000);
        let next = ctl.update(100, 0.04);
        // Analytic jump: 100 · (0.04/0.01)² = 1600.
        assert_eq!(next, 1_600);
    }

    #[test]
    fn controller_holds_in_dead_band() {
        let mut ctl = AdaptiveController::new(0.01, 10, 1_000_000);
        assert_eq!(ctl.update(500, 0.008), 500);
    }

    #[test]
    fn controller_shrinks_when_overly_accurate() {
        let mut ctl = AdaptiveController::new(0.01, 10, 1_000_000);
        assert_eq!(ctl.update(1_000, 0.001), 900);
    }

    #[test]
    fn controller_respects_bounds() {
        let mut ctl = AdaptiveController::new(0.01, 50, 200);
        assert_eq!(ctl.update(190, 0.5), 200);
        assert_eq!(ctl.update(51, 0.0), 50);
    }

    #[test]
    #[should_panic(expected = "target relative error must be in (0, 1)")]
    fn controller_rejects_bad_target() {
        let _ = AdaptiveController::new(0.0, 1, 2);
    }

    fn stratum(pop: u64, values: &[f64]) -> StratumStats {
        let acc: Welford = values.iter().copied().collect();
        StratumStats::from_parts(StratumId(0), pop, acc)
    }

    #[test]
    fn inflation_is_one_when_target_already_met() {
        let stats = [stratum(100, &(0..50).map(|i| i as f64).collect::<Vec<_>>())];
        let k = required_inflation(&stats, 1e9, 2.0).unwrap();
        assert_eq!(k, 1.0);
    }

    #[test]
    fn inflation_reaches_target_variance() {
        let values: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let stats = [stratum(100_000, &values)];
        let z = 2.0;
        let target = 0.1;
        let k = required_inflation(&stats, target, z).unwrap();
        assert!(k > 1.0);
        // Verify: the variance at k·Y should give margin ≈ target.
        let s2 = stats[0].acc.sample_variance();
        let y = 20.0 * k;
        let ci = 100_000.0;
        let var = s2 * (1.0 / y - 1.0 / ci);
        let margin = z * var.sqrt();
        assert!(
            (margin - target).abs() < 0.01 * target,
            "margin {margin} vs target {target}"
        );
    }

    #[test]
    fn inflation_handles_empty_stats() {
        assert_eq!(required_inflation(&[], 0.1, 2.0), Some(1.0));
    }
}
