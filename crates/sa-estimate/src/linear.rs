//! Estimators for approximate linear queries (§3.2–3.3 of the paper):
//! sum, mean, count and histogram over a weighted stratified sample, each
//! reported as `output ± error bound`.

use crate::stats::{stats_of, StratumStats};
use sa_types::{ApproxResult, Confidence, ErrorBound, StratifiedSample};
use std::collections::BTreeMap;

/// Estimates the total `SUM` of all items across strata (Equations 2, 3
/// and 6): point estimate `Σ_i SUM_i` with variance `Σ_i C_i(C_i−Y_i)s_i²/Y_i`
/// and margin `z·√variance` at the requested confidence.
///
/// Strata that arrived but were sampled to zero items (possible only with
/// Bernoulli-style samplers at tiny fractions — reservoir samplers always
/// keep at least one) contribute nothing to the estimate; their absence is
/// visible through the result's `sample_size`/`population_size` counters.
///
/// # Example
///
/// ```
/// use sa_estimate::{estimate_sum, StratumStats};
/// use sa_types::{Confidence, StratumId};
///
/// // One stratum: 4 of 8 items sampled, values 1..4 → Σ sampled = 10,
/// // weight 2 → estimated sum 20.
/// let acc = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// let stats = [StratumStats::from_parts(StratumId(0), 8, acc)];
/// let r = estimate_sum(&stats, Confidence::P95);
/// assert!((r.value - 20.0).abs() < 1e-12);
/// assert!(r.bound.margin() > 0.0);
/// ```
pub fn estimate_sum(stats: &[StratumStats], confidence: Confidence) -> ApproxResult {
    let mut value = 0.0;
    let mut variance = 0.0;
    let mut sampled = 0u64;
    let mut population = 0u64;
    for s in stats {
        value += s.estimated_sum();
        variance += s.sum_variance();
        sampled += s.sample_size();
        population += s.population;
    }
    let margin = confidence.z() * variance.sqrt();
    ApproxResult::new(
        value,
        ErrorBound::new(margin, confidence),
        sampled,
        population,
    )
}

/// Estimates the `MEAN` of all items across strata (Equations 4, 8 and 9):
/// point estimate `Σ_i ω_i·MEAN_i` with `ω_i = C_i / ΣC_j` and variance
/// `Σ_i ω_i² (s_i²/Y_i) (C_i−Y_i)/C_i`.
///
/// Strata with zero sampled items are excluded and the weights `ω_i` are
/// renormalized over the covered strata — equivalent to imputing the
/// covered average for the missing ones, which biases less than imputing
/// zero. Reservoir-based samplers never hit this path.
pub fn estimate_mean(stats: &[StratumStats], confidence: Confidence) -> ApproxResult {
    let mut sampled = 0u64;
    let mut population = 0u64;
    let mut covered_population = 0u64;
    for s in stats {
        sampled += s.sample_size();
        population += s.population;
        if s.sample_size() > 0 {
            covered_population += s.population;
        }
    }
    if covered_population == 0 {
        return ApproxResult::new(0.0, ErrorBound::exact(), 0, population);
    }
    let total = covered_population as f64;
    let mut value = 0.0;
    let mut variance = 0.0;
    for s in stats {
        if s.sample_size() == 0 {
            continue;
        }
        let omega = s.population as f64 / total;
        value += omega * s.acc.mean();
        variance += omega * omega * s.mean_variance();
    }
    let margin = confidence.z() * variance.sqrt();
    ApproxResult::new(
        value,
        ErrorBound::new(margin, confidence),
        sampled,
        population,
    )
}

/// Estimates how many items across all strata satisfy `predicate`
/// — a linear query over indicator values, so Equation 6 applies verbatim.
///
/// # Example
///
/// ```
/// use sa_estimate::estimate_count;
/// use sa_types::{Confidence, StratifiedSample, StratumSample, StratumId};
///
/// // 5 of 10 items sampled; 2 of the sampled are ≥ 4 → estimate 2·2 = 4.
/// let sample: StratifiedSample<f64> =
///     [StratumSample::new(StratumId(0), vec![1.0, 2.0, 4.0, 5.0, 3.0], 10, 5)]
///         .into_iter()
///         .collect();
/// let r = estimate_count(&sample, |v| *v >= 4.0, Confidence::P95);
/// assert!((r.value - 4.0).abs() < 1e-12);
/// ```
pub fn estimate_count<V, F: FnMut(&V) -> bool>(
    sample: &StratifiedSample<V>,
    mut predicate: F,
    confidence: Confidence,
) -> ApproxResult {
    let stats = stats_of(sample, |v| if predicate(v) { 1.0 } else { 0.0 });
    estimate_sum(&stats, confidence)
}

/// Estimates a histogram: for every bucket produced by `bucket_of`, the
/// estimated number of items across all strata falling in that bucket, each
/// with its own error bound. Buckets are returned in ascending order.
///
/// # Example
///
/// ```
/// use sa_estimate::estimate_histogram;
/// use sa_types::{Confidence, StratifiedSample, StratumSample, StratumId};
///
/// let sample: StratifiedSample<f64> =
///     [StratumSample::new(StratumId(0), vec![1.0, 1.5, 7.0], 6, 3)]
///         .into_iter()
///         .collect();
/// let hist = estimate_histogram(&sample, |v| *v as i64, Confidence::P95);
/// assert_eq!(hist.len(), 2);
/// assert_eq!(hist[0].0, 1); // values 1.0 and 1.5
/// assert!((hist[0].1.value - 4.0).abs() < 1e-12); // 2 sampled × weight 2
/// ```
pub fn estimate_histogram<V, B, F>(
    sample: &StratifiedSample<V>,
    mut bucket_of: F,
    confidence: Confidence,
) -> Vec<(B, ApproxResult)>
where
    B: Ord + Clone,
    F: FnMut(&V) -> B,
{
    // Collect the bucket universe first, then estimate each bucket as an
    // indicator-sum in a single pass per stratum.
    let mut buckets: BTreeMap<B, Vec<StratumStats>> = BTreeMap::new();
    for stratum in sample.iter() {
        // Count per bucket within this stratum.
        let mut counts: BTreeMap<B, u64> = BTreeMap::new();
        for item in &stratum.items {
            *counts.entry(bucket_of(item)).or_default() += 1;
        }
        let yi = stratum.sample_size() as u64;
        for (bucket, hits) in counts {
            // Indicator accumulator: `hits` ones and `yi - hits` zeros.
            let mut acc = crate::welford::Welford::new();
            for _ in 0..hits {
                acc.push(1.0);
            }
            for _ in 0..(yi - hits) {
                acc.push(0.0);
            }
            buckets
                .entry(bucket)
                .or_default()
                .push(StratumStats::from_parts(
                    stratum.stratum,
                    stratum.population,
                    acc,
                ));
        }
    }
    buckets
        .into_iter()
        .map(|(b, stats)| (b, estimate_sum(&stats, confidence)))
        .collect()
}

/// Estimates the per-stratum totals — the paper's network-monitoring case
/// study query ("total sizes of TCP, UDP and ICMP traffic", §6.2). Returns
/// one `(stratum, result)` per covered stratum, in stratum order.
pub fn estimate_sum_by_stratum(
    stats: &[StratumStats],
    confidence: Confidence,
) -> Vec<(sa_types::StratumId, ApproxResult)> {
    stats
        .iter()
        .map(|s| {
            let margin = confidence.z() * s.sum_variance().sqrt();
            (
                s.stratum,
                ApproxResult::new(
                    s.estimated_sum(),
                    ErrorBound::new(margin, confidence),
                    s.sample_size(),
                    s.population,
                ),
            )
        })
        .collect()
}

/// Estimates the per-stratum means — the paper's taxi case study query
/// ("average distance of trips starting from each borough", §6.3).
pub fn estimate_mean_by_stratum(
    stats: &[StratumStats],
    confidence: Confidence,
) -> Vec<(sa_types::StratumId, ApproxResult)> {
    stats
        .iter()
        .map(|s| {
            let margin = confidence.z() * s.mean_variance().sqrt();
            (
                s.stratum,
                ApproxResult::new(
                    s.acc.mean(),
                    ErrorBound::new(margin, confidence),
                    s.sample_size(),
                    s.population,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::welford::Welford;
    use sa_types::{StratumId, StratumSample};

    fn stats(id: u32, pop: u64, values: &[f64]) -> StratumStats {
        let acc: Welford = values.iter().copied().collect();
        StratumStats::from_parts(StratumId(id), pop, acc)
    }

    #[test]
    fn sum_fully_sampled_is_exact() {
        let st = [stats(0, 3, &[1.0, 2.0, 3.0]), stats(1, 2, &[10.0, 20.0])];
        let r = estimate_sum(&st, Confidence::P95);
        assert!((r.value - 36.0).abs() < 1e-12);
        assert_eq!(r.bound.margin(), 0.0);
        assert_eq!(r.sample_size, 5);
        assert_eq!(r.population_size, 5);
    }

    #[test]
    fn sum_combines_strata_with_weights() {
        // Stratum 0: 2 of 6 sampled (w=3), Σ=3 → 9.
        // Stratum 1: 2 of 4 sampled (w=2), Σ=7 → 14.
        let st = [stats(0, 6, &[1.0, 2.0]), stats(1, 4, &[3.0, 4.0])];
        let r = estimate_sum(&st, Confidence::P68);
        assert!((r.value - 23.0).abs() < 1e-12);
        // Hand-computed variance: stratum 0: 6·4·0.5/2 = 6; stratum 1:
        // 4·2·0.5/2 = 2; total 8, z = 1.
        assert!((r.bound.margin() - 8.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_weights_by_population_not_sample() {
        // Stratum 0: mean 1.0 over population 90; stratum 1: mean 10.0 over
        // population 10 → weighted mean 1.9, regardless of sample sizes.
        let st = [
            stats(0, 90, &[1.0, 1.0, 1.0]),
            stats(1, 10, &[10.0, 10.0, 10.0, 10.0, 10.0]),
        ];
        let r = estimate_mean(&st, Confidence::P95);
        assert!((r.value - 1.9).abs() < 1e-12);
    }

    #[test]
    fn mean_margin_shrinks_with_sample_size() {
        let small = [stats(0, 1_000, &[1.0, 5.0, 3.0, 7.0])];
        let values: Vec<f64> = (0..100).map(|i| (i % 8) as f64).collect();
        let big = [stats(0, 1_000, &values)];
        let m_small = estimate_mean(&small, Confidence::P95).bound.margin();
        let m_big = estimate_mean(&big, Confidence::P95).bound.margin();
        assert!(m_big < m_small);
    }

    #[test]
    fn mean_renormalizes_over_covered_strata() {
        // Stratum 1 arrived (pop 50) but nothing was sampled; the estimate
        // should be the covered stratum's mean, not dragged towards zero.
        let st = [stats(0, 50, &[4.0, 4.0]), stats(1, 50, &[])];
        let r = estimate_mean(&st, Confidence::P95);
        assert!((r.value - 4.0).abs() < 1e-12);
        assert_eq!(r.population_size, 100);
        assert_eq!(r.sample_size, 2);
    }

    #[test]
    fn empty_input_mean_is_zero_exact() {
        let r = estimate_mean(&[], Confidence::P95);
        assert_eq!(r.value, 0.0);
        assert_eq!(r.bound.margin(), 0.0);
    }

    #[test]
    fn count_estimates_match_weighted_indicators() {
        let sample: StratifiedSample<f64> = [
            StratumSample::new(StratumId(0), vec![1.0, 5.0, 9.0], 9, 3),
            StratumSample::new(StratumId(1), vec![2.0], 1, 3),
        ]
        .into_iter()
        .collect();
        // Items ≥ 5: stratum 0 has 2 sampled × weight 3 = 6; stratum 1 none.
        let r = estimate_count(&sample, |v| *v >= 5.0, Confidence::P95);
        assert!((r.value - 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_covers_all_buckets_and_sums_to_population_estimate() {
        let sample: StratifiedSample<f64> = [StratumSample::new(
            StratumId(0),
            vec![0.0, 0.5, 1.2, 1.9, 2.5],
            10,
            5,
        )]
        .into_iter()
        .collect();
        let hist = estimate_histogram(&sample, |v| *v as i64, Confidence::P95);
        let buckets: Vec<i64> = hist.iter().map(|(b, _)| *b).collect();
        assert_eq!(buckets, vec![0, 1, 2]);
        let total: f64 = hist.iter().map(|(_, r)| r.value).sum();
        // Bucket estimates are weighted counts; they reconstruct C = 10.
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn per_stratum_sums_isolate_strata() {
        let st = [stats(0, 6, &[1.0, 2.0]), stats(1, 4, &[3.0, 4.0])];
        let by = estimate_sum_by_stratum(&st, Confidence::P95);
        assert_eq!(by.len(), 2);
        assert_eq!(by[0].0, StratumId(0));
        assert!((by[0].1.value - 9.0).abs() < 1e-12);
        assert!((by[1].1.value - 14.0).abs() < 1e-12);
    }

    #[test]
    fn per_stratum_means_report_fpc_margins() {
        let st = [stats(0, 4, &[1.0, 3.0])];
        let by = estimate_mean_by_stratum(&st, Confidence::P68);
        let r = by[0].1;
        assert!((r.value - 2.0).abs() < 1e-12);
        // s² = 2, var = (2/2)·(4−2)/4 = 0.5.
        assert!((r.bound.margin() - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn margins_scale_with_confidence() {
        let st = [stats(0, 100, &[1.0, 5.0, 3.0, 7.0])];
        let m68 = estimate_sum(&st, Confidence::P68).bound.margin();
        let m95 = estimate_sum(&st, Confidence::P95).bound.margin();
        let m997 = estimate_sum(&st, Confidence::P997).bound.margin();
        assert!((m95 / m68 - 2.0).abs() < 1e-9);
        assert!((m997 / m68 - 3.0).abs() < 1e-9);
    }
}
