//! Property-based and statistical tests for the estimators: exactness under
//! full sampling, unbiasedness, and confidence-interval coverage.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_estimate::{
    accuracy_loss, estimate_count, estimate_mean, estimate_sum, required_inflation, stats_of,
    StratumStats, Welford,
};
use sa_sampling::{OasrsSampler, SizingPolicy};
use sa_types::{Confidence, StratifiedSample, StratumId, StratumSample};

proptest! {
    /// With every item sampled (C_i == Y_i), sum and mean are exact with a
    /// zero margin, for any population shape.
    #[test]
    fn full_sampling_is_exact(
        strata in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 1..50),
            1..5,
        ),
    ) {
        let sample: StratifiedSample<f64> = strata
            .iter()
            .enumerate()
            .map(|(k, vals)| {
                StratumSample::new(StratumId(k as u32), vals.clone(), vals.len() as u64, vals.len())
            })
            .collect();
        let stats = stats_of(&sample, |v| *v);
        let r_sum = estimate_sum(&stats, Confidence::P95);
        let true_sum: f64 = strata.iter().flatten().sum();
        prop_assert!((r_sum.value - true_sum).abs() < 1e-9);
        prop_assert_eq!(r_sum.bound.margin(), 0.0);

        let r_mean = estimate_mean(&stats, Confidence::P95);
        let n: usize = strata.iter().map(Vec::len).sum();
        let true_mean = true_sum / n as f64;
        prop_assert!((r_mean.value - true_mean).abs() < 1e-9);
        prop_assert_eq!(r_mean.bound.margin(), 0.0);
    }

    /// Count of a tautological predicate reconstructs the total population
    /// exactly (each sampled item stands for W_i originals).
    #[test]
    fn count_true_predicate_reconstructs_population(
        sizes in proptest::collection::vec((1u64..200, 1usize..32), 1..5),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample: StratifiedSample<f64> = sizes
            .iter()
            .enumerate()
            .map(|(k, &(pop, cap))| {
                let y = (pop as usize).min(cap);
                let items: Vec<f64> = (0..y).map(|_| rng.gen::<f64>()).collect();
                StratumSample::new(StratumId(k as u32), items, pop, cap)
            })
            .collect();
        let total: u64 = sizes.iter().map(|&(p, _)| p).sum();
        let r = estimate_count(&sample, |_| true, Confidence::P95);
        prop_assert!((r.value - total as f64).abs() < 1e-6 * total as f64 + 1e-6);
    }

    /// Margins never go negative and scale linearly in z across confidence
    /// levels.
    #[test]
    fn margins_nonnegative_and_z_linear(
        pops in proptest::collection::vec(2u64..500, 1..4),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let stats: Vec<StratumStats> = pops
            .iter()
            .enumerate()
            .map(|(k, &pop)| {
                let y = (pop / 2).max(2);
                let acc: Welford = (0..y).map(|_| rng.gen_range(-5.0..5.0)).collect();
                StratumStats::from_parts(StratumId(k as u32), pop, acc)
            })
            .collect();
        let m1 = estimate_sum(&stats, Confidence::P68).bound.margin();
        let m2 = estimate_sum(&stats, Confidence::P95).bound.margin();
        let m3 = estimate_sum(&stats, Confidence::P997).bound.margin();
        prop_assert!(m1 >= 0.0);
        prop_assert!((m2 - 2.0 * m1).abs() < 1e-9 * m1.max(1.0));
        prop_assert!((m3 - 3.0 * m1).abs() < 1e-9 * m1.max(1.0));
    }

    /// Accuracy loss is symmetric around the exact value and zero iff equal.
    #[test]
    fn accuracy_loss_properties(exact in 0.001f64..1e6, delta in 0.0f64..1e5) {
        prop_assert!((accuracy_loss(exact + delta, exact)
            - accuracy_loss(exact - delta, exact)).abs() < 1e-9);
        prop_assert_eq!(accuracy_loss(exact, exact), 0.0);
    }

    /// required_inflation is monotone: a tighter target needs at least as
    /// much inflation.
    #[test]
    fn inflation_monotone_in_target(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let acc: Welford = (0..64).map(|_| rng.gen_range(0.0..100.0)).collect();
        let stats = [StratumStats::from_parts(StratumId(0), 1_000_000, acc)];
        let loose = required_inflation(&stats, 5.0, 2.0).unwrap();
        let tight = required_inflation(&stats, 0.5, 2.0).unwrap();
        prop_assert!(tight >= loose);
    }
}

/// Over many independent OASRS runs, the sum estimator must be unbiased:
/// its average converges to the true sum.
#[test]
fn sum_estimator_is_unbiased_over_oasrs() {
    const TRIALS: usize = 400;
    // Population: 3 strata of very different sizes and scales, echoing the
    // paper's Gaussian mix.
    let mut rng = SmallRng::seed_from_u64(99);
    let strata: Vec<Vec<f64>> = vec![
        (0..2_000).map(|_| rng.gen_range(5.0..15.0)).collect(),
        (0..400).map(|_| rng.gen_range(900.0..1_100.0)).collect(),
        (0..30).map(|_| rng.gen_range(9_000.0..11_000.0)).collect(),
    ];
    let true_sum: f64 = strata.iter().flatten().sum();

    let mut estimates = Vec::with_capacity(TRIALS);
    for t in 0..TRIALS {
        let mut sampler = OasrsSampler::new(SizingPolicy::PerStratum(20), t as u64);
        for (k, vals) in strata.iter().enumerate() {
            for &v in vals {
                sampler.observe(StratumId(k as u32), v);
            }
        }
        let sample = sampler.finish_interval();
        let stats = stats_of(&sample, |v| *v);
        estimates.push(estimate_sum(&stats, Confidence::P95).value);
    }
    let mean_estimate: f64 = estimates.iter().sum::<f64>() / TRIALS as f64;
    let rel = (mean_estimate - true_sum).abs() / true_sum;
    assert!(
        rel < 0.02,
        "estimator biased: mean {mean_estimate} vs true {true_sum} (rel {rel})"
    );
}

/// The 95% error bound must cover the true value in roughly 95% of runs
/// (allowing statistical slack and the optimism of small-sample s_i²).
#[test]
fn confidence_interval_coverage_is_near_nominal() {
    const TRIALS: usize = 500;
    let mut rng = SmallRng::seed_from_u64(7);
    let strata: Vec<Vec<f64>> = vec![
        (0..3_000).map(|_| rng.gen_range(0.0..20.0)).collect(),
        (0..1_000).map(|_| rng.gen_range(50.0..150.0)).collect(),
    ];
    let true_sum: f64 = strata.iter().flatten().sum();

    let mut covered = 0usize;
    for t in 0..TRIALS {
        let mut sampler = OasrsSampler::new(SizingPolicy::PerStratum(100), 1_000 + t as u64);
        for (k, vals) in strata.iter().enumerate() {
            for &v in vals {
                sampler.observe(StratumId(k as u32), v);
            }
        }
        let sample = sampler.finish_interval();
        let stats = stats_of(&sample, |v| *v);
        let r = estimate_sum(&stats, Confidence::P95);
        let (lo, hi) = r.interval();
        if lo <= true_sum && true_sum <= hi {
            covered += 1;
        }
    }
    let rate = covered as f64 / TRIALS as f64;
    assert!(
        rate > 0.88,
        "95% interval covered only {covered}/{TRIALS} = {rate}"
    );
}

/// Same coverage property for the mean estimator (Equation 9).
#[test]
fn mean_interval_coverage_is_near_nominal() {
    const TRIALS: usize = 500;
    let mut rng = SmallRng::seed_from_u64(21);
    let strata: Vec<Vec<f64>> = vec![
        (0..5_000).map(|_| rng.gen_range(0.0..10.0)).collect(),
        (0..500).map(|_| rng.gen_range(100.0..300.0)).collect(),
        (0..50).map(|_| rng.gen_range(1_000.0..3_000.0)).collect(),
    ];
    let n: usize = strata.iter().map(Vec::len).sum();
    let true_mean: f64 = strata.iter().flatten().sum::<f64>() / n as f64;

    let mut covered = 0usize;
    for t in 0..TRIALS {
        let mut sampler = OasrsSampler::new(SizingPolicy::PerStratum(60), 5_000 + t as u64);
        for (k, vals) in strata.iter().enumerate() {
            for &v in vals {
                sampler.observe(StratumId(k as u32), v);
            }
        }
        let sample = sampler.finish_interval();
        let stats = stats_of(&sample, |v| *v);
        let r = estimate_mean(&stats, Confidence::P95);
        let (lo, hi) = r.interval();
        if lo <= true_mean && true_mean <= hi {
            covered += 1;
        }
    }
    let rate = covered as f64 / TRIALS as f64;
    assert!(
        rate > 0.88,
        "95% mean interval covered only {covered}/{TRIALS} = {rate}"
    );
}

/// Stratification beats SRS on skewed data: with the same total sample
/// budget, the OASRS-based mean estimate has lower error than an
/// unstratified SRS estimate — the effect behind Figures 4(b), 6(c).
#[test]
fn stratified_beats_srs_under_skew() {
    const TRIALS: usize = 300;
    let mut rng = SmallRng::seed_from_u64(33);
    // 99% small values, 1% huge values (long tail).
    let mut population: Vec<(StratumId, f64)> = Vec::new();
    for _ in 0..9_900 {
        population.push((StratumId(0), rng.gen_range(0.0..2.0)));
    }
    for _ in 0..100 {
        population.push((StratumId(1), rng.gen_range(900.0..1_100.0)));
    }
    let true_sum: f64 = population.iter().map(|(_, v)| *v).sum();

    let budget = 200usize;
    let mut oasrs_err = 0.0;
    let mut srs_err = 0.0;
    for t in 0..TRIALS {
        // OASRS with the budget split across the two strata.
        let mut sampler = OasrsSampler::new(SizingPolicy::SharedTotal(budget), t as u64);
        for &(k, v) in &population {
            sampler.observe(k, v);
        }
        let sample = sampler.finish_interval();
        let stats = stats_of(&sample, |v| *v);
        oasrs_err += accuracy_loss(estimate_sum(&stats, Confidence::P95).value, true_sum);

        // SRS with the same budget.
        let mut rng_t = SmallRng::seed_from_u64(10_000 + t as u64);
        let picked = sa_sampling::scasrs_sample(population.clone(), budget, &mut rng_t);
        let srs = sa_estimate::SrsSample::new(picked, population.len() as u64);
        srs_err += accuracy_loss(
            sa_estimate::srs_sum(&srs, |v| *v, Confidence::P95).value,
            true_sum,
        );
    }
    assert!(
        oasrs_err < srs_err,
        "stratified mean error {} not below SRS error {}",
        oasrs_err / TRIALS as f64,
        srs_err / TRIALS as f64
    );
}
