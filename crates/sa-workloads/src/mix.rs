//! Synthetic sub-stream mixes — the microbenchmark inputs of §5.1.

use crate::dist::Distribution;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sa_aggregator::merge_by_time;
use sa_types::{EventTime, StratumId, StreamItem};
use serde::{Deserialize, Serialize};

/// One synthetic sub-stream: a stratum emitting values from a distribution
/// at a given arrival rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubStream {
    /// The stratum identity items will carry.
    pub stratum: StratumId,
    /// Arrival rate in items per second.
    pub rate_per_sec: f64,
    /// The value distribution.
    pub dist: Distribution,
}

impl SubStream {
    /// Creates a sub-stream spec.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive.
    pub fn new(stratum: StratumId, rate_per_sec: f64, dist: Distribution) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        SubStream {
            stratum,
            rate_per_sec,
            dist,
        }
    }

    /// Generates this sub-stream's items for `[start, start + duration)`,
    /// evenly spaced at the arrival rate with a stratum-specific phase so
    /// different sub-streams do not collide on identical timestamps.
    pub fn generate(&self, start: EventTime, duration_ms: i64, seed: u64) -> Vec<StreamItem<f64>> {
        assert!(duration_ms > 0, "duration must be positive");
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (u64::from(self.stratum.0)).wrapping_mul(0xC0FFEE));
        let n = (self.rate_per_sec * duration_ms as f64 / 1_000.0).round() as usize;
        let spacing = duration_ms as f64 / n.max(1) as f64;
        let phase = spacing * (self.stratum.0 % 7 + 1) as f64 / 8.0;
        (0..n)
            .map(|i| {
                let t = start + (phase + i as f64 * spacing) as i64;
                StreamItem::new(self.stratum, t, self.dist.sample(&mut rng))
            })
            .collect()
    }
}

/// A fully deserialized microbenchmark record (see
/// [`Mix::generate_lines`] for the wire format).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixRecord {
    /// Source (stratum) id.
    pub source: u32,
    /// Per-stream sequence number.
    pub seq: u64,
    /// Event timestamp in milliseconds.
    pub timestamp: u64,
    /// The measured value.
    pub value: f64,
    /// Units attribute.
    pub units: String,
    /// Quality attribute.
    pub quality: String,
    /// Site attribute.
    pub site: String,
}

/// A mix of sub-streams forming one input stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    substreams: Vec<SubStream>,
}

impl Mix {
    /// Builds a mix from sub-stream specs.
    ///
    /// # Panics
    ///
    /// Panics if `substreams` is empty.
    pub fn new(substreams: Vec<SubStream>) -> Self {
        assert!(!substreams.is_empty(), "mix needs at least one sub-stream");
        Mix { substreams }
    }

    /// The paper's Gaussian microbenchmark (§5.1): sub-streams A, B, C with
    /// parameters `(µ=10, σ=5)`, `(µ=1000, σ=50)`, `(µ=10000, σ=500)`, at
    /// the given arrival rates (items/second).
    pub fn gaussian(rates: [f64; 3]) -> Self {
        let params = [(10.0, 5.0), (1_000.0, 50.0), (10_000.0, 500.0)];
        Mix::new(
            params
                .iter()
                .zip(rates)
                .enumerate()
                .map(|(i, (&(mean, std_dev), rate))| {
                    SubStream::new(
                        StratumId(i as u32),
                        rate,
                        Distribution::Gaussian { mean, std_dev },
                    )
                })
                .collect(),
        )
    }

    /// The paper's Poisson microbenchmark (§5.1): sub-streams with
    /// `λ = 10`, `λ = 1000`, `λ = 10⁸`.
    pub fn poisson(rates: [f64; 3]) -> Self {
        let lambdas = [10.0, 1_000.0, 100_000_000.0];
        Mix::new(
            lambdas
                .iter()
                .zip(rates)
                .enumerate()
                .map(|(i, (&lambda, rate))| {
                    SubStream::new(StratumId(i as u32), rate, Distribution::Poisson { lambda })
                })
                .collect(),
        )
    }

    /// The skewed Gaussian stream of §5.7-I: sub-stream A dominates with
    /// 80% of items (`µ=100, σ=10`), B has 19% (`µ=1000, σ=100`), C has 1%
    /// (`µ=10000, σ=1000`). `total_rate` is the combined items/second.
    pub fn gaussian_skewed(total_rate: f64) -> Self {
        Mix::new(vec![
            SubStream::new(
                StratumId(0),
                total_rate * 0.80,
                Distribution::Gaussian {
                    mean: 100.0,
                    std_dev: 10.0,
                },
            ),
            SubStream::new(
                StratumId(1),
                total_rate * 0.19,
                Distribution::Gaussian {
                    mean: 1_000.0,
                    std_dev: 100.0,
                },
            ),
            SubStream::new(
                StratumId(2),
                total_rate * 0.01,
                Distribution::Gaussian {
                    mean: 10_000.0,
                    std_dev: 1_000.0,
                },
            ),
        ])
    }

    /// The skewed Poisson stream of §5.7-II: 80% / 19.99% / 0.01% with the
    /// §5.1 lambdas (the 0.01% sub-stream carries `λ = 10⁸` — the long
    /// tail SRS overlooks).
    pub fn poisson_skewed(total_rate: f64) -> Self {
        Mix::new(vec![
            SubStream::new(
                StratumId(0),
                total_rate * 0.80,
                Distribution::Poisson { lambda: 10.0 },
            ),
            SubStream::new(
                StratumId(1),
                total_rate * 0.1999,
                Distribution::Poisson { lambda: 1_000.0 },
            ),
            SubStream::new(
                StratumId(2),
                (total_rate * 0.0001).max(0.2),
                Distribution::Poisson {
                    lambda: 100_000_000.0,
                },
            ),
        ])
    }

    /// The sub-stream specs.
    pub fn substreams(&self) -> &[SubStream] {
        &self.substreams
    }

    /// Generates the merged, time-ordered stream for `[0, duration)`.
    pub fn generate(&self, duration_ms: i64, seed: u64) -> Vec<StreamItem<f64>> {
        let parts = self
            .substreams
            .iter()
            .map(|s| s.generate(EventTime::from_millis(0), duration_ms, seed))
            .collect();
        merge_by_time(parts)
    }

    /// Generates the merged stream in the aggregator's wire format: each
    /// item serialized as a CSV record
    /// (`source,sequence,timestamp_ms,value,checksum`), the way items
    /// arrive from Kafka before deserialization. Queries over this form pay
    /// a full record parse per aggregated item — which is exactly the work
    /// StreamApprox's pre-dataset sampling avoids for unsampled items.
    pub fn generate_lines(&self, duration_ms: i64, seed: u64) -> Vec<StreamItem<String>> {
        self.generate(duration_ms, seed)
            .into_iter()
            .enumerate()
            .map(|(seq, item)| {
                let checksum =
                    (item.stratum.0 as u64 ^ seq as u64 ^ item.time.as_millis() as u64) & 0xFFFF;
                let line = format!(
                    "sensor-{src:04},{seq},{ts},{v:.6},units=items;quality=good;site=edge-{src},{sum:04x}",
                    src = item.stratum.0,
                    seq = seq,
                    ts = item.time.as_millis(),
                    v = item.value,
                    sum = checksum,
                );
                StreamItem::new(item.stratum, item.time, line)
            })
            .collect()
    }

    /// Deserializes a record produced by [`Mix::generate_lines`] into a
    /// [`MixRecord`], validating every field including the checksum — the
    /// per-record work a consumer of the aggregator performs before it can
    /// aggregate anything (the Rust stand-in for the JVM/Kafka
    /// deserialization the paper's systems pay per item).
    ///
    /// # Panics
    ///
    /// Panics on a malformed or corrupted record (the generator never
    /// produces one).
    pub fn parse_record(line: &str) -> MixRecord {
        let mut fields = line.split(',');
        let source_field = fields.next().expect("record source field");
        let source: u32 = source_field
            .strip_prefix("sensor-")
            .and_then(|f| f.parse().ok())
            .expect("record source id");
        let seq: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .expect("record sequence field");
        let timestamp: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .expect("record timestamp field");
        let value: f64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .expect("record value field");
        let attributes_field = fields.next().expect("record attributes field");
        let mut units = None;
        let mut quality = None;
        let mut site = None;
        for pair in attributes_field.split(';') {
            match pair.split_once('=') {
                Some(("units", v)) => units = Some(v.to_string()),
                Some(("quality", v)) => quality = Some(v.to_string()),
                Some(("site", v)) => site = Some(v.to_string()),
                _ => panic!("unknown record attribute {pair:?}"),
            }
        }
        let checksum = fields
            .next()
            .and_then(|f| u64::from_str_radix(f, 16).ok())
            .expect("record checksum field");
        assert_eq!(
            checksum,
            (u64::from(source) ^ seq ^ timestamp) & 0xFFFF,
            "corrupted record"
        );
        MixRecord {
            source,
            seq,
            timestamp,
            value,
            units: units.expect("units attribute"),
            quality: quality.expect("quality attribute"),
            site: site.expect("site attribute"),
        }
    }

    /// Deserializes a record and projects its value (the common case for
    /// sum/mean queries).
    ///
    /// # Panics
    ///
    /// Panics on a malformed record; see [`Mix::parse_record`].
    pub fn parse_line(line: &str) -> f64 {
        Self::parse_record(line).value
    }

    /// Generates the stream with per-sub-stream rates overridden — used by
    /// the varying-arrival-rate experiment (Figure 5a's `A:B:C` settings).
    ///
    /// # Panics
    ///
    /// Panics if `rates` does not match the number of sub-streams.
    pub fn generate_with_rates(
        &self,
        rates: &[f64],
        duration_ms: i64,
        seed: u64,
    ) -> Vec<StreamItem<f64>> {
        assert_eq!(
            rates.len(),
            self.substreams.len(),
            "one rate per sub-stream required"
        );
        let parts = self
            .substreams
            .iter()
            .zip(rates)
            .map(|(s, &rate)| {
                SubStream::new(s.stratum, rate, s.dist).generate(
                    EventTime::from_millis(0),
                    duration_ms,
                    seed,
                )
            })
            .collect();
        merge_by_time(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substream_respects_rate() {
        let s = SubStream::new(
            StratumId(0),
            500.0,
            Distribution::Uniform {
                low: 0.0,
                high: 1.0,
            },
        );
        let items = s.generate(EventTime::from_millis(0), 4_000, 1);
        assert_eq!(items.len(), 2_000);
        for it in &items {
            assert!(it.time >= EventTime::from_millis(0));
            assert!(it.time < EventTime::from_millis(4_000));
        }
    }

    #[test]
    fn substream_items_are_time_ordered() {
        let s = SubStream::new(
            StratumId(3),
            1_234.0,
            Distribution::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            },
        );
        let items = s.generate(EventTime::from_secs(10), 2_000, 2);
        for w in items.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(items[0].time >= EventTime::from_secs(10));
    }

    #[test]
    fn gaussian_mix_matches_paper_setup() {
        let mix = Mix::gaussian([8_000.0, 2_000.0, 100.0]);
        let stream = mix.generate(1_000, 3);
        assert_eq!(stream.len(), 8_000 + 2_000 + 100);
        let count = |k: u32| stream.iter().filter(|i| i.stratum == StratumId(k)).count();
        assert_eq!(count(0), 8_000);
        assert_eq!(count(1), 2_000);
        assert_eq!(count(2), 100);
        // Merged stream is time-ordered.
        for w in stream.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn gaussian_substream_values_center_on_means() {
        let mix = Mix::gaussian([1_000.0, 1_000.0, 1_000.0]);
        let stream = mix.generate(10_000, 4);
        for (k, expected) in [(0u32, 10.0), (1, 1_000.0), (2, 10_000.0)] {
            let vals: Vec<f64> = stream
                .iter()
                .filter(|i| i.stratum == StratumId(k))
                .map(|i| i.value)
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            assert!(
                (mean - expected).abs() / expected < 0.05,
                "stratum {k}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn skewed_mix_has_dominant_substream() {
        let mix = Mix::gaussian_skewed(10_000.0);
        let stream = mix.generate(1_000, 5);
        let a = stream.iter().filter(|i| i.stratum == StratumId(0)).count() as f64;
        let c = stream.iter().filter(|i| i.stratum == StratumId(2)).count() as f64;
        let total = stream.len() as f64;
        assert!((a / total - 0.80).abs() < 0.01);
        assert!((c / total - 0.01).abs() < 0.005);
    }

    #[test]
    fn poisson_skewed_keeps_rare_substream_alive() {
        let mix = Mix::poisson_skewed(10_000.0);
        // Even at 0.01%, sub-stream C must appear over a long enough window.
        let stream = mix.generate(10_000, 6);
        let c = stream.iter().filter(|i| i.stratum == StratumId(2)).count();
        assert!(c >= 2, "rare sub-stream produced {c} items");
    }

    #[test]
    fn rate_override_changes_counts() {
        let mix = Mix::gaussian([1.0, 1.0, 1.0]);
        let stream = mix.generate_with_rates(&[100.0, 2_000.0, 8_000.0], 1_000, 7);
        let count = |k: u32| stream.iter().filter(|i| i.stratum == StratumId(k)).count();
        assert_eq!(count(0), 100);
        assert_eq!(count(1), 2_000);
        assert_eq!(count(2), 8_000);
    }

    #[test]
    fn lines_roundtrip_values() {
        let mix = Mix::gaussian([300.0, 300.0, 300.0]);
        let records = mix.generate(1_000, 9);
        let lines = mix.generate_lines(1_000, 9);
        assert_eq!(records.len(), lines.len());
        for (r, l) in records.iter().zip(&lines) {
            assert!((Mix::parse_line(&l.value) - r.value).abs() < 1e-5);
            assert_eq!(r.stratum, l.stratum);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mix = Mix::gaussian([500.0, 500.0, 500.0]);
        assert_eq!(mix.generate(1_000, 42), mix.generate(1_000, 42));
        assert_ne!(mix.generate(1_000, 42), mix.generate(1_000, 43));
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        let _ = SubStream::new(
            StratumId(0),
            0.0,
            Distribution::Uniform {
                low: 0.0,
                high: 1.0,
            },
        );
    }
}
