//! Value distributions for synthetic sub-streams.
//!
//! Implemented locally (Box–Muller for the normal, Knuth/normal
//! approximation for the Poisson, exponentiation for the log-normal) to
//! keep the dependency set to the plain `rand` core.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A value distribution a sub-stream draws its items from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Normal distribution with the given mean and standard deviation —
    /// the paper's Gaussian microbenchmark streams (§5.1).
    Gaussian {
        /// Mean `µ`.
        mean: f64,
        /// Standard deviation `σ` (must be non-negative).
        std_dev: f64,
    },
    /// Poisson distribution with the given rate — the paper's Poisson
    /// microbenchmark streams, including the extreme `λ = 10⁸` sub-stream
    /// (§5.1).
    Poisson {
        /// Rate `λ` (must be positive).
        lambda: f64,
    },
    /// Log-normal distribution (of the underlying normal's parameters) —
    /// used for heavy-tailed flow sizes and trip distances in the case
    /// studies.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Uniform over `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
}

impl Distribution {
    /// Draws one value.
    ///
    /// # Panics
    ///
    /// Panics if the distribution's parameters are invalid (negative
    /// `std_dev`, non-positive `lambda`, or `high <= low`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Distribution::Gaussian { mean, std_dev } => {
                assert!(std_dev >= 0.0, "standard deviation must be non-negative");
                mean + std_dev * standard_normal(rng)
            }
            Distribution::Poisson { lambda } => {
                assert!(lambda > 0.0, "lambda must be positive");
                poisson(rng, lambda)
            }
            Distribution::LogNormal { mu, sigma } => {
                assert!(sigma >= 0.0, "sigma must be non-negative");
                (mu + sigma * standard_normal(rng)).exp()
            }
            Distribution::Uniform { low, high } => {
                assert!(high > low, "uniform bounds must satisfy low < high");
                rng.gen_range(low..high)
            }
        }
    }

    /// The distribution's true mean — the analytic ground truth the
    /// accuracy experiments compare against.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Gaussian { mean, .. } => mean,
            Distribution::Poisson { lambda } => lambda,
            Distribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Distribution::Uniform { low, high } => (low + high) / 2.0,
        }
    }
}

/// A standard normal draw via Box–Muller (one of the pair is discarded;
/// simplicity over squeezing both out).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// A Poisson draw: Knuth's product method for small `λ`, the (rounded,
/// clamped) normal approximation for large `λ` — with `λ = 10⁸` in the
/// paper's setup, exact methods are both pointless and slow.
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k as f64;
            }
            k += 1;
        }
    } else {
        let draw = lambda + lambda.sqrt() * standard_normal(rng);
        draw.round().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn sample_stats(dist: Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut g = rng(seed);
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut g)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn gaussian_matches_parameters() {
        let (mean, var) = sample_stats(
            Distribution::Gaussian {
                mean: 1_000.0,
                std_dev: 50.0,
            },
            50_000,
            1,
        );
        assert!((mean - 1_000.0).abs() < 2.0, "mean {mean}");
        assert!((var.sqrt() - 50.0).abs() < 2.0, "std {}", var.sqrt());
    }

    #[test]
    fn poisson_small_lambda_matches_moments() {
        let (mean, var) = sample_stats(Distribution::Poisson { lambda: 10.0 }, 50_000, 2);
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!((var - 10.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_regime() {
        let (mean, var) = sample_stats(
            Distribution::Poisson {
                lambda: 100_000_000.0,
            },
            20_000,
            3,
        );
        assert!((mean - 1e8).abs() / 1e8 < 1e-4, "mean {mean}");
        assert!((var - 1e8).abs() / 1e8 < 0.05, "var {var}");
    }

    #[test]
    fn poisson_is_integral_and_nonnegative() {
        let mut g = rng(4);
        for &lambda in &[0.5, 5.0, 29.9, 30.1, 1_000.0] {
            let d = Distribution::Poisson { lambda };
            for _ in 0..200 {
                let x = d.sample(&mut g);
                assert!(x >= 0.0);
                assert_eq!(x, x.round());
            }
        }
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let d = Distribution::LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let (mean, _) = sample_stats(d, 100_000, 5);
        assert!((mean - d.mean()).abs() / d.mean() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut g = rng(6);
        let d = Distribution::Uniform {
            low: 2.0,
            high: 5.0,
        };
        for _ in 0..10_000 {
            let x = d.sample(&mut g);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn analytic_means() {
        assert_eq!(
            Distribution::Gaussian {
                mean: 7.0,
                std_dev: 2.0
            }
            .mean(),
            7.0
        );
        assert_eq!(Distribution::Poisson { lambda: 42.0 }.mean(), 42.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_rejected() {
        let mut g = rng(7);
        let _ = Distribution::Poisson { lambda: 0.0 }.sample(&mut g);
    }
}
