//! Synthetic New York taxi rides — the DEBS-2015 substitute for the taxi
//! analytics case study (§6.3).
//!
//! The paper replays the DEBS 2015 Grand Challenge dataset (itineraries of
//! 10,000 NYC taxis in 2013), maps each trip's start coordinates to one of
//! the six boroughs, and asks for the average trip distance per borough per
//! sliding window. This module generates rides with that structure: borough
//! shares dominated by Manhattan, and per-borough log-normal trip-distance
//! distributions (outer-borough trips run longer).

use crate::dist::Distribution;
use crate::netflow::ParseRecordError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_aggregator::merge_by_time;
use sa_types::{EventTime, StratumId, StreamItem};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A New York borough (plus Newark/EWR trips, which the DEBS mapping folds
/// into a sixth zone) — the stratification criterion of the case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Borough {
    /// Manhattan.
    Manhattan,
    /// Brooklyn.
    Brooklyn,
    /// Queens.
    Queens,
    /// The Bronx.
    Bronx,
    /// Staten Island.
    StatenIsland,
    /// Newark airport zone.
    Newark,
}

impl Borough {
    /// All boroughs, in stratum order.
    pub const ALL: [Borough; 6] = [
        Borough::Manhattan,
        Borough::Brooklyn,
        Borough::Queens,
        Borough::Bronx,
        Borough::StatenIsland,
        Borough::Newark,
    ];

    /// The stratum id this borough maps to.
    pub fn stratum(self) -> StratumId {
        StratumId(self as u32)
    }

    /// Share of trips starting in this borough (Manhattan dominates yellow
    /// cab pickups overwhelmingly in the 2013 data).
    pub fn trip_share(self) -> f64 {
        match self {
            Borough::Manhattan => 0.770,
            Borough::Brooklyn => 0.110,
            Borough::Queens => 0.080,
            Borough::Bronx => 0.025,
            Borough::StatenIsland => 0.010,
            Borough::Newark => 0.005,
        }
    }

    /// The log-normal parameters of this borough's trip distances (miles):
    /// Manhattan hops are short; airport/outer-borough trips run long.
    fn distance_distribution(self) -> Distribution {
        match self {
            Borough::Manhattan => Distribution::LogNormal {
                mu: 0.75,
                sigma: 0.55,
            },
            Borough::Brooklyn => Distribution::LogNormal {
                mu: 1.20,
                sigma: 0.60,
            },
            Borough::Queens => Distribution::LogNormal {
                mu: 2.10,
                sigma: 0.45,
            },
            Borough::Bronx => Distribution::LogNormal {
                mu: 1.60,
                sigma: 0.55,
            },
            Borough::StatenIsland => Distribution::LogNormal {
                mu: 2.30,
                sigma: 0.40,
            },
            Borough::Newark => Distribution::LogNormal {
                mu: 2.80,
                sigma: 0.30,
            },
        }
    }
}

impl fmt::Display for Borough {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Borough::Manhattan => "Manhattan",
            Borough::Brooklyn => "Brooklyn",
            Borough::Queens => "Queens",
            Borough::Bronx => "Bronx",
            Borough::StatenIsland => "StatenIsland",
            Borough::Newark => "Newark",
        };
        write!(f, "{name}")
    }
}

impl FromStr for Borough {
    type Err = ParseRecordError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Manhattan" => Ok(Borough::Manhattan),
            "Brooklyn" => Ok(Borough::Brooklyn),
            "Queens" => Ok(Borough::Queens),
            "Bronx" => Ok(Borough::Bronx),
            "StatenIsland" => Ok(Borough::StatenIsland),
            "Newark" => Ok(Borough::Newark),
            _ => Err(ParseRecordError),
        }
    }
}

/// One taxi ride record, trimmed to the fields the query touches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaxiRide {
    /// Borough the trip started in (the stratum).
    pub borough: Borough,
    /// Taxi medallion number.
    pub medallion: u32,
    /// Trip distance in miles — the value the query averages.
    pub distance_miles: f64,
    /// Fare in cents.
    pub fare_cents: u32,
}

impl TaxiRide {
    /// Serializes to the replayed line format
    /// (`borough,medallion,distance,fare`).
    pub fn to_line(&self) -> String {
        format!(
            "{},{},{:.3},{}",
            self.borough, self.medallion, self.distance_miles, self.fare_cents
        )
    }

    /// Parses a line produced by [`TaxiRide::to_line`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseRecordError`] on a malformed line.
    pub fn parse_line(line: &str) -> Result<TaxiRide, ParseRecordError> {
        let mut parts = line.split(',');
        let mut next = || parts.next().ok_or(ParseRecordError);
        let borough: Borough = next()?.parse()?;
        let medallion = next()?.parse().map_err(|_| ParseRecordError)?;
        let distance_miles = next()?.parse().map_err(|_| ParseRecordError)?;
        let fare_cents = next()?.parse().map_err(|_| ParseRecordError)?;
        if parts.next().is_some() {
            return Err(ParseRecordError);
        }
        Ok(TaxiRide {
            borough,
            medallion,
            distance_miles,
            fare_cents,
        })
    }
}

/// Generates the synthetic taxi-ride stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiGenerator {
    /// Combined arrival rate over all boroughs, rides per second.
    pub total_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TaxiGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `total_rate` is not positive.
    pub fn new(total_rate: f64, seed: u64) -> Self {
        assert!(total_rate > 0.0, "arrival rate must be positive");
        TaxiGenerator { total_rate, seed }
    }

    /// Generates the merged, time-ordered ride stream for
    /// `[0, duration_ms)`.
    pub fn generate(&self, duration_ms: i64) -> Vec<StreamItem<TaxiRide>> {
        assert!(duration_ms > 0, "duration must be positive");
        let parts = Borough::ALL
            .iter()
            .map(|&borough| {
                let rate = self.total_rate * borough.trip_share();
                let n = (rate * duration_ms as f64 / 1_000.0).round().max(1.0) as usize;
                let spacing = duration_ms as f64 / n as f64;
                let phase = spacing * (borough.stratum().0 % 7 + 1) as f64 / 8.0;
                let mut rng = SmallRng::seed_from_u64(
                    self.seed ^ u64::from(borough.stratum().0).wrapping_mul(0x7AC51),
                );
                let dist = borough.distance_distribution();
                (0..n)
                    .map(|i| {
                        let t = EventTime::from_millis((phase + i as f64 * spacing) as i64);
                        let distance_miles = dist.sample(&mut rng).min(100.0);
                        let fare_cents = (250.0 + distance_miles * 250.0) as u32;
                        let ride = TaxiRide {
                            borough,
                            medallion: rng.gen_range(0..10_000),
                            distance_miles,
                            fare_cents,
                        };
                        StreamItem::new(borough.stratum(), t, ride)
                    })
                    .collect()
            })
            .collect();
        merge_by_time(parts)
    }

    /// Generates the stream as serialized lines (the replayed wire format).
    pub fn generate_lines(&self, duration_ms: i64) -> Vec<StreamItem<String>> {
        self.generate(duration_ms)
            .into_iter()
            .map(|item| {
                let line = item.value.to_line();
                StreamItem::new(item.stratum, item.time, line)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ride_line_roundtrip() {
        let ride = TaxiRide {
            borough: Borough::Queens,
            medallion: 4_217,
            distance_miles: 8.125,
            fare_cents: 2_281,
        };
        let parsed = TaxiRide::parse_line(&ride.to_line()).unwrap();
        assert_eq!(parsed.borough, ride.borough);
        assert_eq!(parsed.medallion, ride.medallion);
        assert!((parsed.distance_miles - ride.distance_miles).abs() < 1e-3);
        assert_eq!(parsed.fare_cents, ride.fare_cents);
    }

    #[test]
    fn malformed_ride_lines_rejected() {
        for bad in ["", "Gotham,1,2.0,3", "Queens,1,2.0", "Queens,1,2.0,3,4"] {
            assert!(TaxiRide::parse_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn shares_sum_to_one_and_manhattan_dominates() {
        let total: f64 = Borough::ALL.iter().map(|b| b.trip_share()).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(Borough::Manhattan.trip_share() > 0.5);
    }

    #[test]
    fn six_strata_all_present() {
        let stream = TaxiGenerator::new(20_000.0, 1).generate(1_000);
        for b in Borough::ALL {
            let count = stream.iter().filter(|i| i.stratum == b.stratum()).count();
            assert!(count > 0, "{b} missing");
        }
        let strata: std::collections::BTreeSet<u32> = stream.iter().map(|i| i.stratum.0).collect();
        assert_eq!(strata.len(), 6);
    }

    #[test]
    fn manhattan_trips_are_shortest_on_average() {
        let stream = TaxiGenerator::new(50_000.0, 2).generate(1_000);
        let avg = |b: Borough| {
            let d: Vec<f64> = stream
                .iter()
                .filter(|i| i.stratum == b.stratum())
                .map(|i| i.value.distance_miles)
                .collect();
            d.iter().sum::<f64>() / d.len() as f64
        };
        let manhattan = avg(Borough::Manhattan);
        for b in [Borough::Queens, Borough::StatenIsland, Borough::Newark] {
            assert!(manhattan < avg(b), "{b} shorter than Manhattan");
        }
    }

    #[test]
    fn stream_is_time_ordered() {
        let stream = TaxiGenerator::new(5_000.0, 3).generate(2_000);
        for w in stream.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn rare_boroughs_still_appear_per_window() {
        // Newark is 0.5% of trips; at 10k rides/s a 1-second window should
        // still contain dozens — the "minority stratum" the paper's
        // stratified samplers must not overlook.
        let stream = TaxiGenerator::new(10_000.0, 4).generate(1_000);
        let newark = stream
            .iter()
            .filter(|i| i.stratum == Borough::Newark.stratum())
            .count();
        assert!(newark >= 10, "only {newark} Newark rides");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TaxiGenerator::new(1_000.0, 9).generate(500);
        let b = TaxiGenerator::new(1_000.0, 9).generate(500);
        assert_eq!(a, b);
    }
}
