//! Synthetic NetFlow traces — the CAIDA substitute for the network-traffic
//! case study (§6.2).
//!
//! The paper replays 670 GB of CAIDA 2015 backbone traces converted to
//! NetFlow records, containing 115,472,322 TCP, 67,098,852 UDP and
//! 2,801,002 ICMP flows, and asks for the total traffic size per protocol
//! per sliding window. The traces are not redistributable, so this module
//! generates records with the same stratum structure: per-protocol arrival
//! shares matching the trace's flow-count proportions, and heavy-tailed
//! (log-normal) flow sizes. The query's difficulty — a rare ICMP stratum
//! (~1.5% of flows) that SRS tends to under-sample — is preserved.

use crate::dist::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sa_aggregator::merge_by_time;
use sa_types::{EventTime, StratumId, StreamItem};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Transport protocol of a flow — the stratification criterion of the case
/// study ("measure the TCP, UDP, and ICMP network traffic over time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol.
    Icmp,
}

impl Protocol {
    /// All protocols, in stratum order.
    pub const ALL: [Protocol; 3] = [Protocol::Tcp, Protocol::Udp, Protocol::Icmp];

    /// The stratum id this protocol maps to.
    pub fn stratum(self) -> StratumId {
        match self {
            Protocol::Tcp => StratumId(0),
            Protocol::Udp => StratumId(1),
            Protocol::Icmp => StratumId(2),
        }
    }

    /// Share of flows in the CAIDA-derived dataset
    /// (115,472,322 : 67,098,852 : 2,801,002).
    pub fn flow_share(self) -> f64 {
        const TCP: f64 = 115_472_322.0;
        const UDP: f64 = 67_098_852.0;
        const ICMP: f64 = 2_801_002.0;
        const TOTAL: f64 = TCP + UDP + ICMP;
        match self {
            Protocol::Tcp => TCP / TOTAL,
            Protocol::Udp => UDP / TOTAL,
            Protocol::Icmp => ICMP / TOTAL,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Icmp => write!(f, "ICMP"),
        }
    }
}

impl FromStr for Protocol {
    type Err = ParseRecordError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "TCP" => Ok(Protocol::Tcp),
            "UDP" => Ok(Protocol::Udp),
            "ICMP" => Ok(Protocol::Icmp),
            _ => Err(ParseRecordError),
        }
    }
}

/// Failed to parse a serialized record line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseRecordError;

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed record line")
    }
}

impl std::error::Error for ParseRecordError {}

/// One NetFlow record, trimmed to the fields the case study keeps (§6.2:
/// "removed unused fields (such as source and destination ports, duration,
/// etc.)").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Transport protocol (the stratum).
    pub protocol: Protocol,
    /// Source IPv4 address.
    pub src_addr: u32,
    /// Destination IPv4 address.
    pub dst_addr: u32,
    /// Packet count of the flow.
    pub packets: u32,
    /// Total bytes of the flow — the value the query sums.
    pub bytes: u64,
}

impl FlowRecord {
    /// Serializes to the on-wire line format the replay tool ships
    /// (`proto,src,dst,packets,bytes`). Parsing this back is the per-item
    /// work a real deployment pays per record, which the runners include.
    pub fn to_line(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.protocol, self.src_addr, self.dst_addr, self.packets, self.bytes
        )
    }

    /// Parses a line produced by [`FlowRecord::to_line`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseRecordError`] if the line has the wrong number of
    /// fields or a field fails to parse.
    pub fn parse_line(line: &str) -> Result<FlowRecord, ParseRecordError> {
        let mut parts = line.split(',');
        let mut next = || parts.next().ok_or(ParseRecordError);
        let protocol: Protocol = next()?.parse()?;
        let src_addr = next()?.parse().map_err(|_| ParseRecordError)?;
        let dst_addr = next()?.parse().map_err(|_| ParseRecordError)?;
        let packets = next()?.parse().map_err(|_| ParseRecordError)?;
        let bytes = next()?.parse().map_err(|_| ParseRecordError)?;
        if parts.next().is_some() {
            return Err(ParseRecordError);
        }
        Ok(FlowRecord {
            protocol,
            src_addr,
            dst_addr,
            packets,
            bytes,
        })
    }
}

/// Generates the synthetic NetFlow stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFlowGenerator {
    /// Combined arrival rate over all protocols, flows per second.
    pub total_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NetFlowGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `total_rate` is not positive.
    pub fn new(total_rate: f64, seed: u64) -> Self {
        assert!(total_rate > 0.0, "arrival rate must be positive");
        NetFlowGenerator { total_rate, seed }
    }

    fn size_distribution(protocol: Protocol) -> Distribution {
        // Heavy-tailed flow sizes; TCP flows are largest, ICMP smallest.
        match protocol {
            Protocol::Tcp => Distribution::LogNormal {
                mu: 8.0,
                sigma: 1.6,
            },
            Protocol::Udp => Distribution::LogNormal {
                mu: 6.0,
                sigma: 1.2,
            },
            Protocol::Icmp => Distribution::LogNormal {
                mu: 4.5,
                sigma: 0.5,
            },
        }
    }

    /// Generates the merged, time-ordered stream of serialized flow lines
    /// for `[0, duration_ms)`. Records are shipped as lines, mirroring how
    /// they arrive from the aggregator; runners parse them per item.
    pub fn generate_lines(&self, duration_ms: i64) -> Vec<StreamItem<String>> {
        self.generate(duration_ms)
            .into_iter()
            .map(|item| {
                let line = item.value.to_line();
                StreamItem::new(item.stratum, item.time, line)
            })
            .collect()
    }

    /// Generates the merged, time-ordered stream of parsed records for
    /// `[0, duration_ms)`.
    pub fn generate(&self, duration_ms: i64) -> Vec<StreamItem<FlowRecord>> {
        assert!(duration_ms > 0, "duration must be positive");
        let parts = Protocol::ALL
            .iter()
            .map(|&protocol| {
                let rate = self.total_rate * protocol.flow_share();
                let n = (rate * duration_ms as f64 / 1_000.0).round().max(1.0) as usize;
                let spacing = duration_ms as f64 / n as f64;
                let phase = spacing * (protocol.stratum().0 % 7 + 1) as f64 / 8.0;
                let mut rng = SmallRng::seed_from_u64(
                    self.seed ^ u64::from(protocol.stratum().0).wrapping_mul(0xF10E5),
                );
                let size_dist = Self::size_distribution(protocol);
                (0..n)
                    .map(|i| {
                        let t = EventTime::from_millis((phase + i as f64 * spacing) as i64);
                        let bytes = size_dist.sample(&mut rng).max(40.0) as u64;
                        let packets = ((bytes / 800) + 1) as u32;
                        let record = FlowRecord {
                            protocol,
                            src_addr: rng.gen(),
                            dst_addr: rng.gen(),
                            packets,
                            bytes,
                        };
                        StreamItem::new(protocol.stratum(), t, record)
                    })
                    .collect()
            })
            .collect();
        merge_by_time(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_roundtrip() {
        let record = FlowRecord {
            protocol: Protocol::Udp,
            src_addr: 0xC0A8_0001,
            dst_addr: 0x0A00_0001,
            packets: 17,
            bytes: 13_337,
        };
        let parsed = FlowRecord::parse_line(&record.to_line()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "TCP,1,2,3",
            "TCP,1,2,3,4,5",
            "GRE,1,2,3,4",
            "TCP,x,2,3,4",
        ] {
            assert!(FlowRecord::parse_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn shares_match_caida_proportions() {
        let total: f64 = Protocol::ALL.iter().map(|p| p.flow_share()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((Protocol::Tcp.flow_share() - 0.623).abs() < 0.01);
        assert!((Protocol::Icmp.flow_share() - 0.0151).abs() < 0.002);
    }

    #[test]
    fn generator_respects_proportions() {
        let stream = NetFlowGenerator::new(50_000.0, 1).generate(1_000);
        let total = stream.len() as f64;
        for p in Protocol::ALL {
            let share = stream.iter().filter(|i| i.stratum == p.stratum()).count() as f64 / total;
            assert!(
                (share - p.flow_share()).abs() < 0.01,
                "{p}: {share} vs {}",
                p.flow_share()
            );
        }
    }

    #[test]
    fn stream_is_time_ordered_and_in_range() {
        let stream = NetFlowGenerator::new(10_000.0, 2).generate(2_000);
        for w in stream.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for i in &stream {
            assert!(i.time >= EventTime::from_millis(0));
            assert!(i.time < EventTime::from_millis(2_000));
        }
    }

    #[test]
    fn tcp_flows_dwarf_icmp_flows() {
        let stream = NetFlowGenerator::new(30_000.0, 3).generate(1_000);
        let avg = |p: Protocol| {
            let flows: Vec<u64> = stream
                .iter()
                .filter(|i| i.stratum == p.stratum())
                .map(|i| i.value.bytes)
                .collect();
            flows.iter().sum::<u64>() as f64 / flows.len() as f64
        };
        assert!(avg(Protocol::Tcp) > 5.0 * avg(Protocol::Icmp));
    }

    #[test]
    fn lines_parse_back_to_records() {
        let generator = NetFlowGenerator::new(1_000.0, 4);
        let records = generator.generate(500);
        let lines = generator.generate_lines(500);
        assert_eq!(records.len(), lines.len());
        for (r, l) in records.iter().zip(&lines) {
            assert_eq!(FlowRecord::parse_line(&l.value).unwrap(), r.value);
            assert_eq!(r.stratum, l.stratum);
            assert_eq!(r.time, l.time);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NetFlowGenerator::new(5_000.0, 7).generate(1_000);
        let b = NetFlowGenerator::new(5_000.0, 7).generate(1_000);
        assert_eq!(a, b);
    }
}
