//! Synthetic workload generators for the StreamApprox evaluation.
//!
//! Everything the paper's experiments feed into the system is reproduced
//! here, deterministically seeded:
//!
//! * [`Distribution`] — Gaussian / Poisson / log-normal / uniform value
//!   distributions (§5.1's microbenchmark parameters are presets).
//! * [`SubStream`] / [`Mix`] — multi-sub-stream synthetic inputs with
//!   per-stratum arrival rates, including the skewed 80/19/1 and
//!   80/19.99/0.01 mixes of §5.7.
//! * [`NetFlowGenerator`] / [`FlowRecord`] — the CAIDA-trace substitute for
//!   the network-traffic case study (§6.2), with the real trace's
//!   per-protocol flow proportions.
//! * [`TaxiGenerator`] / [`TaxiRide`] — the DEBS-2015 substitute for the
//!   taxi analytics case study (§6.3), six borough strata dominated by
//!   Manhattan.
//!
//! Record types serialize to line format ([`FlowRecord::to_line`],
//! [`TaxiRide::to_line`]) so runners can include realistic per-item parse
//! work, as a deployment consuming from Kafka would.
//!
//! # Example
//!
//! ```
//! use sa_workloads::Mix;
//!
//! // The paper's Gaussian microbenchmark at 8000:2000:100 items/second.
//! let stream = Mix::gaussian([8_000.0, 2_000.0, 100.0]).generate(1_000, 42);
//! assert_eq!(stream.len(), 10_100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod mix;
mod netflow;
mod taxi;

pub use dist::Distribution;
pub use mix::{Mix, MixRecord, SubStream};
pub use netflow::{FlowRecord, NetFlowGenerator, ParseRecordError, Protocol};
pub use taxi::{Borough, TaxiGenerator, TaxiRide};
